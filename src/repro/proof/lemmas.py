"""Derived lemmas and tactics over the proof kernel.

The kernel exposes primitive inference rules; this module composes them
into the reusable steps real derivations need (chained transitivity, n-ary
monotone composition, membership of a disjunct in a union tree), and then
proves a library of structural lemmas about the PTX and RC11 specs
themselves — the machine-checked counterparts of one-line Alloy ``check``
assertions (Figure 16 of the paper).  Tests verify each lemma twice: once
by replaying the kernel derivation, and once by bounded model finding.
"""

from __future__ import annotations

from typing import Dict

from ..lang import ast
from . import kernel
from .kernel import Thm


# ---------------------------------------------------------------------------
# tactics
# ---------------------------------------------------------------------------
def subset_chain(*thms: Thm) -> Thm:
    """Fold ``subset_trans`` over a chain of inclusions."""
    if not thms:
        raise kernel.ProofError("subset_chain needs at least one theorem")
    out = thms[0]
    for thm in thms[1:]:
        out = kernel.subset_trans(out, thm)
    return out


def seq_mono(*thms: Thm) -> Thm:
    """N-ary ``join_mono``: compose inclusions pointwise along ``seq``."""
    if len(thms) < 2:
        raise kernel.ProofError("seq_mono needs at least two inclusions")
    out = thms[0]
    for thm in thms[1:]:
        out = kernel.join_mono(out, thm)
    return out


def union_member(member: ast.Expr, tree: ast.Expr) -> Thm:
    """Prove ``member ⊆ tree`` when ``member`` occurs in the union tree."""
    if member == tree:
        return kernel.subset_refl(member)
    if isinstance(tree, ast.Union_):
        try:
            inner = union_member(member, tree.left)
            return kernel.subset_trans(
                inner, kernel.union_left(tree.left, tree.right)
            )
        except kernel.ProofError:
            inner = union_member(member, tree.right)
            return kernel.subset_trans(
                inner, kernel.union_right(tree.left, tree.right)
            )
    raise kernel.ProofError(f"{member!r} is not a disjunct of {tree!r}")


def expr_in_opt(e: ast.Expr) -> Thm:
    """``⊢ e ⊆ e?`` (alias for the kernel rule, named for readability)."""
    return kernel.opt_intro(e)


def wrap_with_opts(middle: ast.Expr, left: ast.Expr, right: ast.Expr) -> Thm:
    """Prove ``m ⊆ left? ; m ; right?``.

    The standard move for pushing a relation into a ``po? ; sw ; po?``
    block: ``m = iden;m;iden ⊆ left?;m;right?``.
    """
    step1 = kernel.iden_intro_left(middle)            # m ⊆ iden;m
    widen1 = kernel.join_mono(
        kernel.opt_iden(left), kernel.subset_refl(middle)
    )                                                  # iden;m ⊆ left?;m
    upto = kernel.subset_trans(step1, widen1)          # m ⊆ left?;m
    step2 = kernel.iden_intro_right(ast.Join(ast.Optional_(left), middle))
    widen2 = kernel.join_mono(
        kernel.subset_refl(ast.Join(ast.Optional_(left), middle)),
        kernel.opt_iden(right),
    )
    return subset_chain(upto, step2, widen2)


# ---------------------------------------------------------------------------
# spec-level lemma library
# ---------------------------------------------------------------------------
def ptx_lemmas() -> Dict[str, Thm]:
    """Machine-checked structural lemmas about the PTX spec (Figure 4).

    Each lemma is closed (no hypotheses): it holds in *every* interpretation
    of the base relations, which is why the bounded model finder can
    cross-check it with an Alloy-style ``check``.
    """
    from ..ptx import spec as P

    lemmas: Dict[str, Thm] = {}

    # sw ⊆ cause_base: a synchronizes-with edge is itself a causality step.
    sw_in_block = wrap_with_opts(P.sw, P.po, P.po)
    block = ast.Join(
        ast.Join(ast.Optional_(P.po), P.sw), ast.Optional_(P.po)
    )
    sw_in_base = kernel.subset_trans(
        subset_chain(
            sw_in_block,
            # left?;m;right? needs reassociation to match seq(): seq builds
            # ((po? ; sw) ; po?) which is exactly what wrap_with_opts built.
            kernel.subset_refl(block),
        ),
        kernel.closure_unfold(block),
    )
    lemmas["sw_in_cause_base"] = sw_in_base

    # cause_base ⊆ cause
    lemmas["cause_base_in_cause"] = union_member(P.cause_base, P.cause)

    # sw ⊆ cause (chaining the two)
    lemmas["sw_in_cause"] = kernel.subset_trans(
        sw_in_base, lemmas["cause_base_in_cause"]
    )

    # sc ⊆ sw: Fence-SC order synchronizes directly (Figure 4).
    lemmas["sc_in_sw"] = union_member(P.sc, P.sw)

    # sc ⊆ cause: composing the chain — the formal content of "the Fence-SC
    # order is part of causality", which Axiom 2 then constrains.
    lemmas["sc_in_cause"] = subset_chain(
        lemmas["sc_in_sw"], lemmas["sw_in_cause"]
    )

    # syncbarrier ⊆ sw ⊆ cause (barrier synchronization is causal).
    lemmas["barrier_in_sw"] = union_member(P.syncbarrier, P.sw)
    lemmas["barrier_in_cause"] = subset_chain(
        lemmas["barrier_in_sw"], lemmas["sw_in_cause"]
    )

    # cause_base is transitive: cause_base;cause_base ⊆ cause_base.
    lemmas["cause_base_trans"] = kernel.closure_compose(block)

    # obs;po_loc ⊆ cause and obs;cause_base ⊆ cause (the two extension arms).
    arm = ast.Join(P.obs, ast.Union_(P.cause_base, P.po_loc))
    lemmas["obs_arm_in_cause"] = union_member(arm, P.cause)
    po_loc_arm = kernel.join_mono(
        kernel.subset_refl(P.obs),
        union_member(P.po_loc, ast.Union_(P.cause_base, P.po_loc)),
    )
    lemmas["obs_poloc_in_cause"] = subset_chain(
        po_loc_arm, lemmas["obs_arm_in_cause"]
    )

    # Closure induction at work: chains of synchronization edges stay in
    # base causality — sw+ ⊆ cause_base, from sw ⊆ cause_base (above) and
    # cause_base's transitivity, via the kernel's least-fixpoint rule.
    lemmas["sw_plus_in_cause_base"] = kernel.closure_least(
        lemmas["cause_base_trans"], sw_in_base
    )

    return lemmas


def rc11_lemmas() -> Dict[str, Thm]:
    """Machine-checked structural lemmas about the scoped RC11 spec."""
    from ..rc11 import spec as C

    lemmas: Dict[str, Thm] = {}

    hb_step = ast.Union_(C.sb, ast.Inter(C.incl, C.sw))

    # sb ⊆ hb
    lemmas["sb_in_hb"] = kernel.subset_trans(
        union_member(C.sb, hb_step), kernel.closure_unfold(hb_step)
    )

    # incl ∩ sw ⊆ hb (only inclusive synchronization enters hb)
    lemmas["incl_sw_in_hb"] = kernel.subset_trans(
        union_member(ast.Inter(C.incl, C.sw), hb_step),
        kernel.closure_unfold(hb_step),
    )

    # hb is transitive
    lemmas["hb_trans"] = kernel.closure_compose(hb_step)

    # rf ⊆ eco, mo ⊆ eco, rb ⊆ eco
    comm = ast.Union_(ast.Union_(C.rf, C.mo), C.rb)
    for name, expr in (("rf", C.rf), ("mo", C.mo), ("rb", C.rb)):
        lemmas[f"{name}_in_eco"] = kernel.subset_trans(
            union_member(expr, comm), kernel.closure_unfold(comm)
        )

    # eco is transitive
    lemmas["eco_trans"] = kernel.closure_compose(comm)

    # sb ⊆ scb and mo ⊆ scb (two of the scb arms)
    lemmas["sb_in_scb"] = union_member(C.sb, C.scb)
    lemmas["mo_in_scb"] = union_member(C.mo, C.scb)

    # psc_base ⊆ psc, psc_f ⊆ psc
    lemmas["psc_base_in_psc"] = union_member(C.psc_base, C.psc)
    lemmas["psc_f_in_psc"] = union_member(C.psc_f, C.psc)

    # Closure induction: chains of inclusive synchronization stay in hb.
    lemmas["incl_sw_plus_in_hb"] = kernel.closure_least(
        lemmas["hb_trans"], lemmas["incl_sw_in_hb"]
    )

    # eco absorbs its own generators on the right: eco ; rf ⊆ eco.
    rf_in_eco_step = kernel.subset_trans(
        kernel.join_mono(kernel.subset_refl(C.eco), lemmas["rf_in_eco"]),
        lemmas["eco_trans"],
    )
    lemmas["eco_rf_in_eco"] = rf_in_eco_step

    return lemmas


def all_lemmas() -> Dict[str, Thm]:
    """The combined PTX + RC11 lemma library."""
    out = {f"ptx.{k}": v for k, v in ptx_lemmas().items()}
    out.update({f"rc11.{k}": v for k, v in rc11_lemmas().items()})
    return out
