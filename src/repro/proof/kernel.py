"""An LCF-style proof kernel for relational algebra (the Coq analog, §5.3).

The paper compiles its Alloy model into Coq (via ``alloqc``) and proves the
scoped-C++→PTX mapping sound for programs of *any* size.  We reproduce the
trust structure in miniature: a :class:`Thm` (a judgment ``hyps ⊢ concl``
over :mod:`repro.lang` formulas) can only be constructed by the inference
rules in this module, each of which checks its side conditions
syntactically.  Anything a derivation produces is therefore sound relative
to the rules — and the rules themselves are semantically validated by
property-based tests that evaluate random instances of each rule with the
concrete evaluator (tests/test_proof_soundness.py) — the same combined
empirical-plus-formal discipline the paper advocates.

The calculus covers what axiomatic-memory-model proofs actually use:
inclusion reasoning (lattice rules, monotonicity of join/closure),
closure induction, and irreflexivity/acyclicity transport (including cycle
rotation, the workhorse of "this communication cycle violates that axiom"
arguments).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Tuple

from ..lang import ast

_KERNEL_TOKEN = object()


class ProofError(Exception):
    """An inference rule was applied outside its side conditions."""


@dataclass(frozen=True)
class Thm:
    """A kernel-certified judgment ``hyps ⊢ concl``.

    Instances are only constructible through the rule functions below; the
    constructor checks a private token to prevent forgery.
    """

    hyps: FrozenSet[ast.Formula]
    concl: ast.Formula
    rule: str
    _token: object = None

    def __post_init__(self):
        if self._token is not _KERNEL_TOKEN:
            raise ProofError(
                "Thm objects may only be created by kernel inference rules"
            )

    def __repr__(self) -> str:
        return f"<Thm [{len(self.hyps)} hyps] ⊢ {self.concl!r} by {self.rule}>"


def _thm(hyps, concl: ast.Formula, rule: str) -> Thm:
    return Thm(hyps=frozenset(hyps), concl=concl, rule=rule, _token=_KERNEL_TOKEN)


def _merge(*thms: Thm) -> FrozenSet[ast.Formula]:
    out: FrozenSet[ast.Formula] = frozenset()
    for thm in thms:
        out |= thm.hyps
    return out


def _expect(condition: bool, message: str) -> None:
    if not condition:
        raise ProofError(message)


# ---------------------------------------------------------------------------
# structural rules
# ---------------------------------------------------------------------------
def assume(formula: ast.Formula) -> Thm:
    """``f ⊢ f``."""
    return _thm({formula}, formula, "assume")


# ---------------------------------------------------------------------------
# inclusion lattice
# ---------------------------------------------------------------------------
def subset_refl(expr: ast.Expr) -> Thm:
    """``⊢ e ⊆ e``."""
    return _thm((), ast.Subset(expr, expr), "subset_refl")


def subset_trans(left: Thm, right: Thm) -> Thm:
    """From ``a ⊆ b`` and ``b ⊆ c`` conclude ``a ⊆ c``."""
    _expect(isinstance(left.concl, ast.Subset), "subset_trans: left not ⊆")
    _expect(isinstance(right.concl, ast.Subset), "subset_trans: right not ⊆")
    _expect(
        left.concl.right == right.concl.left,
        "subset_trans: middle expressions differ",
    )
    return _thm(
        _merge(left, right),
        ast.Subset(left.concl.left, right.concl.right),
        "subset_trans",
    )


def union_left(a: ast.Expr, b: ast.Expr) -> Thm:
    """``⊢ a ⊆ a ∪ b``."""
    return _thm((), ast.Subset(a, ast.Union_(a, b)), "union_left")


def union_right(a: ast.Expr, b: ast.Expr) -> Thm:
    """``⊢ b ⊆ a ∪ b``."""
    return _thm((), ast.Subset(b, ast.Union_(a, b)), "union_right")


def union_lub(left: Thm, right: Thm) -> Thm:
    """From ``a ⊆ c`` and ``b ⊆ c`` conclude ``a ∪ b ⊆ c``."""
    _expect(
        isinstance(left.concl, ast.Subset) and isinstance(right.concl, ast.Subset),
        "union_lub: premises must be inclusions",
    )
    _expect(left.concl.right == right.concl.right, "union_lub: targets differ")
    return _thm(
        _merge(left, right),
        ast.Subset(
            ast.Union_(left.concl.left, right.concl.left), left.concl.right
        ),
        "union_lub",
    )


def inter_left(a: ast.Expr, b: ast.Expr) -> Thm:
    """``⊢ a ∩ b ⊆ a``."""
    return _thm((), ast.Subset(ast.Inter(a, b), a), "inter_left")


def inter_right(a: ast.Expr, b: ast.Expr) -> Thm:
    """``⊢ a ∩ b ⊆ b``."""
    return _thm((), ast.Subset(ast.Inter(a, b), b), "inter_right")


def inter_glb(left: Thm, right: Thm) -> Thm:
    """From ``c ⊆ a`` and ``c ⊆ b`` conclude ``c ⊆ a ∩ b``."""
    _expect(
        isinstance(left.concl, ast.Subset) and isinstance(right.concl, ast.Subset),
        "inter_glb: premises must be inclusions",
    )
    _expect(left.concl.left == right.concl.left, "inter_glb: sources differ")
    return _thm(
        _merge(left, right),
        ast.Subset(
            left.concl.left, ast.Inter(left.concl.right, right.concl.right)
        ),
        "inter_glb",
    )


def diff_subset(a: ast.Expr, b: ast.Expr) -> Thm:
    """``⊢ a - b ⊆ a``."""
    return _thm((), ast.Subset(ast.Diff(a, b), a), "diff_subset")


# ---------------------------------------------------------------------------
# monotonicity
# ---------------------------------------------------------------------------
def _both_subsets(left: Thm, right: Thm, rule: str):
    _expect(
        isinstance(left.concl, ast.Subset) and isinstance(right.concl, ast.Subset),
        f"{rule}: premises must be inclusions",
    )
    return left.concl, right.concl


def join_mono(left: Thm, right: Thm) -> Thm:
    """From ``a ⊆ c`` and ``b ⊆ d`` conclude ``a ; b ⊆ c ; d``."""
    lc, rc = _both_subsets(left, right, "join_mono")
    return _thm(
        _merge(left, right),
        ast.Subset(ast.Join(lc.left, rc.left), ast.Join(lc.right, rc.right)),
        "join_mono",
    )


def union_mono(left: Thm, right: Thm) -> Thm:
    """From ``a ⊆ c`` and ``b ⊆ d`` conclude ``a ∪ b ⊆ c ∪ d``."""
    lc, rc = _both_subsets(left, right, "union_mono")
    return _thm(
        _merge(left, right),
        ast.Subset(ast.Union_(lc.left, rc.left), ast.Union_(lc.right, rc.right)),
        "union_mono",
    )


def inter_mono(left: Thm, right: Thm) -> Thm:
    """From ``a ⊆ c`` and ``b ⊆ d`` conclude ``a ∩ b ⊆ c ∩ d``."""
    lc, rc = _both_subsets(left, right, "inter_mono")
    return _thm(
        _merge(left, right),
        ast.Subset(ast.Inter(lc.left, rc.left), ast.Inter(lc.right, rc.right)),
        "inter_mono",
    )


def transpose_mono(premise: Thm) -> Thm:
    """From ``a ⊆ b`` conclude ``~a ⊆ ~b``."""
    _expect(isinstance(premise.concl, ast.Subset), "transpose_mono: not ⊆")
    return _thm(
        premise.hyps,
        ast.Subset(
            ast.Transpose(premise.concl.left), ast.Transpose(premise.concl.right)
        ),
        "transpose_mono",
    )


def closure_mono(premise: Thm) -> Thm:
    """From ``a ⊆ b`` conclude ``a+ ⊆ b+``."""
    _expect(isinstance(premise.concl, ast.Subset), "closure_mono: not ⊆")
    return _thm(
        premise.hyps,
        ast.Subset(
            ast.TClosure(premise.concl.left), ast.TClosure(premise.concl.right)
        ),
        "closure_mono",
    )


def opt_mono(premise: Thm) -> Thm:
    """From ``a ⊆ b`` conclude ``a? ⊆ b?``."""
    _expect(isinstance(premise.concl, ast.Subset), "opt_mono: not ⊆")
    return _thm(
        premise.hyps,
        ast.Subset(
            ast.Optional_(premise.concl.left), ast.Optional_(premise.concl.right)
        ),
        "opt_mono",
    )


# ---------------------------------------------------------------------------
# closure laws
# ---------------------------------------------------------------------------
def closure_unfold(expr: ast.Expr) -> Thm:
    """``⊢ e ⊆ e+``."""
    return _thm((), ast.Subset(expr, ast.TClosure(expr)), "closure_unfold")


def closure_compose(expr: ast.Expr) -> Thm:
    """``⊢ e+ ; e+ ⊆ e+``."""
    closed = ast.TClosure(expr)
    return _thm((), ast.Subset(ast.Join(closed, closed), closed), "closure_compose")


def closure_least(step: Thm, base: Thm) -> Thm:
    """Closure induction: from ``a ; a ⊆ a`` and ``e ⊆ a`` conclude ``e+ ⊆ a``."""
    _expect(isinstance(step.concl, ast.Subset), "closure_least: step not ⊆")
    _expect(isinstance(base.concl, ast.Subset), "closure_least: base not ⊆")
    a = step.concl.right
    _expect(
        step.concl.left == ast.Join(a, a),
        "closure_least: step premise must be a;a ⊆ a",
    )
    _expect(base.concl.right == a, "closure_least: base target mismatch")
    return _thm(
        _merge(step, base),
        ast.Subset(ast.TClosure(base.concl.left), a),
        "closure_least",
    )


def closure_idem(expr: ast.Expr) -> Thm:
    """``⊢ (e+)+ ⊆ e+``."""
    closed = ast.TClosure(expr)
    return _thm((), ast.Subset(ast.TClosure(closed), closed), "closure_idem")


def opt_intro(expr: ast.Expr) -> Thm:
    """``⊢ e ⊆ e?``."""
    return _thm((), ast.Subset(expr, ast.Optional_(expr)), "opt_intro")


def opt_unfold(expr: ast.Expr) -> Thm:
    """``⊢ e? ⊆ e ∪ iden``."""
    return _thm(
        (),
        ast.Subset(ast.Optional_(expr), ast.Union_(expr, ast.Iden())),
        "opt_unfold",
    )


def opt_fold(expr: ast.Expr) -> Thm:
    """``⊢ e ∪ iden ⊆ e?``."""
    return _thm(
        (),
        ast.Subset(ast.Union_(expr, ast.Iden()), ast.Optional_(expr)),
        "opt_fold",
    )


# ---------------------------------------------------------------------------
# join algebra (stated as inclusions in both directions)
# ---------------------------------------------------------------------------
def join_assoc_fwd(a: ast.Expr, b: ast.Expr, c: ast.Expr) -> Thm:
    """``⊢ (a;b);c ⊆ a;(b;c)``."""
    return _thm(
        (),
        ast.Subset(
            ast.Join(ast.Join(a, b), c), ast.Join(a, ast.Join(b, c))
        ),
        "join_assoc_fwd",
    )


def join_assoc_bwd(a: ast.Expr, b: ast.Expr, c: ast.Expr) -> Thm:
    """``⊢ a;(b;c) ⊆ (a;b);c``."""
    return _thm(
        (),
        ast.Subset(
            ast.Join(a, ast.Join(b, c)), ast.Join(ast.Join(a, b), c)
        ),
        "join_assoc_bwd",
    )


def join_distrib_union_fwd(a: ast.Expr, b: ast.Expr, c: ast.Expr) -> Thm:
    """``⊢ (a ∪ b);c ⊆ (a;c) ∪ (b;c)``."""
    return _thm(
        (),
        ast.Subset(
            ast.Join(ast.Union_(a, b), c),
            ast.Union_(ast.Join(a, c), ast.Join(b, c)),
        ),
        "join_distrib_union_fwd",
    )


def join_distrib_union_bwd(a: ast.Expr, b: ast.Expr, c: ast.Expr) -> Thm:
    """``⊢ (a;c) ∪ (b;c) ⊆ (a ∪ b);c``."""
    return _thm(
        (),
        ast.Subset(
            ast.Union_(ast.Join(a, c), ast.Join(b, c)),
            ast.Join(ast.Union_(a, b), c),
        ),
        "join_distrib_union_bwd",
    )


def join_distrib_union_left_fwd(a: ast.Expr, b: ast.Expr, c: ast.Expr) -> Thm:
    """``⊢ a;(b ∪ c) ⊆ (a;b) ∪ (a;c)``."""
    return _thm(
        (),
        ast.Subset(
            ast.Join(a, ast.Union_(b, c)),
            ast.Union_(ast.Join(a, b), ast.Join(a, c)),
        ),
        "join_distrib_union_left_fwd",
    )


def join_opt_expand(a: ast.Expr, b: ast.Expr) -> Thm:
    """``⊢ a ; b? ⊆ (a;b) ∪ a`` (unfolding the optional)."""
    return _thm(
        (),
        ast.Subset(
            ast.Join(a, ast.Optional_(b)),
            ast.Union_(ast.Join(a, b), a),
        ),
        "join_opt_expand",
    )


def bracket_drop_left(s: ast.Expr, e: ast.Expr) -> Thm:
    """``⊢ [s];e ⊆ e``."""
    return _thm(
        (), ast.Subset(ast.Join(ast.Bracket(s), e), e), "bracket_drop_left"
    )


def bracket_drop_right(e: ast.Expr, s: ast.Expr) -> Thm:
    """``⊢ e;[s] ⊆ e``."""
    return _thm(
        (), ast.Subset(ast.Join(e, ast.Bracket(s)), e), "bracket_drop_right"
    )


def iden_join_left(e: ast.Expr) -> Thm:
    """``⊢ iden;e ⊆ e``."""
    return _thm((), ast.Subset(ast.Join(ast.Iden(), e), e), "iden_join_left")


def iden_join_right(e: ast.Expr) -> Thm:
    """``⊢ e;iden ⊆ e``."""
    return _thm((), ast.Subset(ast.Join(e, ast.Iden()), e), "iden_join_right")


def iden_intro_left(e: ast.Expr) -> Thm:
    """``⊢ e ⊆ iden;e``."""
    return _thm((), ast.Subset(e, ast.Join(ast.Iden(), e)), "iden_intro_left")


def iden_intro_right(e: ast.Expr) -> Thm:
    """``⊢ e ⊆ e;iden``."""
    return _thm((), ast.Subset(e, ast.Join(e, ast.Iden())), "iden_intro_right")


def opt_iden(e: ast.Expr) -> Thm:
    """``⊢ iden ⊆ e?``."""
    return _thm((), ast.Subset(ast.Iden(), ast.Optional_(e)), "opt_iden")


# ---------------------------------------------------------------------------
# irreflexivity / acyclicity transport
# ---------------------------------------------------------------------------
def irreflexive_subset(irr: Thm, sub: Thm) -> Thm:
    """From ``irreflexive(b)`` and ``a ⊆ b`` conclude ``irreflexive(a)``."""
    _expect(isinstance(irr.concl, ast.Irreflexive), "irreflexive_subset: not irr")
    _expect(isinstance(sub.concl, ast.Subset), "irreflexive_subset: not ⊆")
    _expect(sub.concl.right == irr.concl.expr, "irreflexive_subset: mismatch")
    return _thm(
        _merge(irr, sub),
        ast.Irreflexive(sub.concl.left),
        "irreflexive_subset",
    )


def acyclic_subset(acy: Thm, sub: Thm) -> Thm:
    """From ``acyclic(b)`` and ``a ⊆ b`` conclude ``acyclic(a)``."""
    _expect(isinstance(acy.concl, ast.Acyclic), "acyclic_subset: not acyclic")
    _expect(isinstance(sub.concl, ast.Subset), "acyclic_subset: not ⊆")
    _expect(sub.concl.right == acy.concl.expr, "acyclic_subset: mismatch")
    return _thm(
        _merge(acy, sub), ast.Acyclic(sub.concl.left), "acyclic_subset"
    )


def acyclic_to_irreflexive_closure(acy: Thm) -> Thm:
    """From ``acyclic(e)`` conclude ``irreflexive(e+)``."""
    _expect(isinstance(acy.concl, ast.Acyclic), "not an acyclicity premise")
    return _thm(
        acy.hyps,
        ast.Irreflexive(ast.TClosure(acy.concl.expr)),
        "acyclic_to_irreflexive_closure",
    )


def irreflexive_closure_to_acyclic(irr: Thm) -> Thm:
    """From ``irreflexive(e+)`` conclude ``acyclic(e)``."""
    _expect(
        isinstance(irr.concl, ast.Irreflexive)
        and isinstance(irr.concl.expr, ast.TClosure),
        "premise must be irreflexive(e+)",
    )
    return _thm(
        irr.hyps,
        ast.Acyclic(irr.concl.expr.inner),
        "irreflexive_closure_to_acyclic",
    )


def acyclic_irreflexive(acy: Thm) -> Thm:
    """From ``acyclic(e)`` conclude ``irreflexive(e)``."""
    _expect(isinstance(acy.concl, ast.Acyclic), "not an acyclicity premise")
    return _thm(acy.hyps, ast.Irreflexive(acy.concl.expr), "acyclic_irreflexive")


def irreflexive_rotate(irr: Thm) -> Thm:
    """From ``irreflexive(a;b)`` conclude ``irreflexive(b;a)``.

    Cycle rotation: a cycle through ``b;a`` at x is a cycle through ``a;b``
    at the intermediate point.  This is the step memory-model proofs use to
    move a cycle's starting point onto the edge an axiom talks about.
    """
    _expect(
        isinstance(irr.concl, ast.Irreflexive)
        and isinstance(irr.concl.expr, ast.Join),
        "premise must be irreflexive(a;b)",
    )
    a = irr.concl.expr.left
    b = irr.concl.expr.right
    return _thm(
        irr.hyps, ast.Irreflexive(ast.Join(b, a)), "irreflexive_rotate"
    )


def irreflexive_union(left: Thm, right: Thm) -> Thm:
    """From ``irreflexive(a)`` and ``irreflexive(b)``: ``irreflexive(a ∪ b)``."""
    _expect(
        isinstance(left.concl, ast.Irreflexive)
        and isinstance(right.concl, ast.Irreflexive),
        "irreflexive_union: premises must be irreflexivities",
    )
    return _thm(
        _merge(left, right),
        ast.Irreflexive(ast.Union_(left.concl.expr, right.concl.expr)),
        "irreflexive_union",
    )


def empty_subset(nof: Thm, sub: Thm) -> Thm:
    """From ``no b`` and ``a ⊆ b`` conclude ``no a``."""
    _expect(isinstance(nof.concl, ast.NoF), "empty_subset: not an emptiness")
    _expect(isinstance(sub.concl, ast.Subset), "empty_subset: not ⊆")
    _expect(sub.concl.right == nof.concl.expr, "empty_subset: mismatch")
    return _thm(_merge(nof, sub), ast.NoF(sub.concl.left), "empty_subset")


def conj_intro(left: Thm, right: Thm) -> Thm:
    """From ``p`` and ``q`` conclude ``p ∧ q``."""
    return _thm(
        _merge(left, right), ast.And(left.concl, right.concl), "conj_intro"
    )


def conj_left(conj: Thm) -> Thm:
    """From ``p ∧ q`` conclude ``p``."""
    _expect(isinstance(conj.concl, ast.And), "conj_left: not a conjunction")
    return _thm(conj.hyps, conj.concl.left, "conj_left")


def conj_right(conj: Thm) -> Thm:
    """From ``p ∧ q`` conclude ``q``."""
    _expect(isinstance(conj.concl, ast.And), "conj_right: not a conjunction")
    return _thm(conj.hyps, conj.concl.right, "conj_right")
