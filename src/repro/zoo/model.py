"""The ``Model`` protocol: a memory model as pure data.

A zoo model is three declarations and nothing else:

* an **event signature** — how PTX execution events are classified into
  the model's event sets, and which base relations the model's axioms
  read (each relation names a builder from the shared registry in
  :mod:`repro.zoo.engine`);
* a **witness spec** — which relations the model existentially
  quantifies over (the coherence-order style and name, and whether a
  runtime ``fence.sc`` order is enumerated);
* the **axioms** — a ``.cat`` source shipped in
  :mod:`repro.cat.models`, referenced by name.

Given those, the generic engine (:func:`repro.zoo.engine.zoo_outcomes`)
enumerates candidate executions and filters them through the cat
constraints: adding a model to the repository means writing a ``.cat``
file and one :class:`ZooModel` declaration — no new engine code.

Models additionally declare **containment claims**: ``A ⊑ B`` asserts
that every behaviour ``A`` allows, ``B`` allows too (``A`` is the
*stronger* model).  Claims are consumed twice — the conformance matrix
(:mod:`repro.zoo.matrix`) verifies them cell-by-cell with witness
tests, and the fuzz oracle derives a cross-model containment check from
every claim (:func:`repro.fuzz.oracle.containment_checks`), so each
declared edge is fuzzed continuously.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Optional, Tuple


@dataclass(frozen=True)
class EventSignature:
    """How a model reads a PTX candidate execution.

    ``sets`` maps cat set names to event predicates; ``relations`` maps
    cat relation names to base-relation builders.  Both name entries in
    the shared registries (:data:`repro.zoo.engine.PREDICATES` /
    :data:`repro.zoo.engine.BUILDERS`); the names on the left are
    whatever the model's ``.cat`` file expects to find bound.
    """

    #: ``(cat set name, predicate name)`` pairs
    sets: Tuple[Tuple[str, str], ...] = ()
    #: ``(cat relation name, builder name)`` pairs
    relations: Tuple[Tuple[str, str], ...] = ()

    @property
    def set_names(self) -> Tuple[str, ...]:
        return tuple(name for name, _ in self.sets)

    @property
    def relation_names(self) -> Tuple[str, ...]:
        return tuple(name for name, _ in self.relations)


@dataclass(frozen=True)
class WitnessSpec:
    """The existentially quantified relations of a model.

    ``co_style`` picks the coherence-order witness space:

    * ``"total"`` — a total order over the writes to each location with
      the init write pinned first (CPU-style: TSO, SC, RC11's ``mo``);
    * ``"partial-ms"`` — orientations of the *morally strong* write
      pairs only (the PTX partial coherence order, §3.2), seeded with
      init-first edges and, when ``co_forced_from`` names a cat
      definition, the same-location write pairs that definition forces
      (PTX Axiom 1 forces ``cause`` edges into ``co``).

    ``sc_fences`` additionally enumerates a runtime order over morally
    strong ``fence.sc`` pairs, bound as ``sc`` (PTX §3.4).
    """

    co_style: str = "total"
    co_name: str = "co"
    sc_fences: bool = False
    co_forced_from: Optional[str] = None

    def __post_init__(self):
        if self.co_style not in ("total", "partial-ms"):
            raise ValueError(
                f"unknown coherence witness style {self.co_style!r}; "
                "expected 'total' or 'partial-ms'"
            )
        if self.co_forced_from is not None and self.co_style != "partial-ms":
            raise ValueError(
                "co_forced_from only applies to the 'partial-ms' style "
                "(total orders have no orientation left to force)"
            )


@dataclass(frozen=True)
class Claim:
    """A declared behavioural containment: ``stronger ⊑ weaker``.

    Every outcome the *stronger* model allows, the *weaker* model must
    allow too (outcomes are compared after concretizing racy final
    memory — see :func:`repro.zoo.engine.concrete_observations`).

    ``basis`` records why the claim is believed: ``"structural"`` claims
    follow from axiom implication over a shared witness space (they hold
    for *every* program); ``"empirical"`` claims are validated by the
    conformance matrix over the corpus and fuzzed continuously.
    """

    stronger: str
    weaker: str
    rationale: str = ""
    basis: str = "structural"

    def __post_init__(self):
        if self.basis not in ("structural", "empirical"):
            raise ValueError(f"unknown claim basis {self.basis!r}")


@dataclass(frozen=True)
class ZooModel:
    """One registered memory model, declared entirely as data."""

    name: str
    #: key into :data:`repro.cat.models._SOURCES` (the axioms)
    cat: str
    signature: EventSignature
    witnesses: WitnessSpec
    #: containment claims in which this model is the *stronger* side
    claims: Tuple[Claim, ...] = ()
    #: search options the model's enumeration understands
    opts: FrozenSet[str] = frozenset()
    #: options tolerated and dropped (e.g. PTX-only annotations)
    ignored_opts: FrozenSet[str] = frozenset()
    description: str = ""

    def __post_init__(self):
        for claim in self.claims:
            if claim.stronger != self.name:
                raise ValueError(
                    f"model {self.name!r} may only declare claims in "
                    f"which it is the stronger side, got "
                    f"{claim.stronger!r} ⊑ {claim.weaker!r}"
                )

    def bound_names(self) -> FrozenSet[str]:
        """Every name the engine will bind before evaluating the cat
        constraints: signature sets/relations plus the witnesses."""
        names = set(self.signature.set_names)
        names.update(self.signature.relation_names)
        names.add("rf")
        names.add(self.witnesses.co_name)
        if self.witnesses.sc_fences:
            names.add("sc")
        return frozenset(names)
