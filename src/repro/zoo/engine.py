"""The generic zoo engine: enumerate executions for any declared model.

One staged enumeration (mirroring :mod:`repro.search.ptx_search`)
serves every :class:`~repro.zoo.model.ZooModel`:

1. build the static environment — event sets from the signature's
   predicates, base relations from its builders;
2. pick ``rf`` per read, recomputing the rf-dependent builders
   (e.g. TSO's ``rfe``);
3. pick the runtime ``sc`` fence order when the witness spec asks for
   one, and check the co-independent cat constraints once per prefix;
4. pick the coherence witness — per-location total orders (CPU-style
   ``co``/``mo``) or orientations of the morally strong write pairs
   (PTX partial style), seeded with forced edges;
5. check the remaining (co-dependent) constraints and report the
   surviving outcomes.

The cat parser inlines ``let`` definitions at parse time, so every
constraint references only base names — the environment needs exactly
the signature's bindings plus the witnesses, and the shared-identity
ASTs make the evaluator's memoisation effective across candidates.

Because different models disagree about which writes coherence orders
(PTX leaves morally weak write pairs unordered, so racy locations
report value *sets*), cross-model comparisons go through
:func:`concrete_observations`, which flattens each outcome into the
set of concrete final states it stands for.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..cat.models import load_model
from ..core.deadline import check_deadline
from ..core.execution import program_order, same_location
from ..core.scopes import mutually_inclusive
from ..lang import (
    CompiledEnv,
    Env,
    bit_env,
    compiled_model,
    program_signature,
    var_deps,
)
from ..ptx.events import Event, Sem, init_write
from ..ptx.model import moral_strength
from ..ptx.program import Elaboration, Program, elaborate
from ..relation import Relation
from ..search.posets import (
    oriented_orders,
    oriented_orders_incremental,
    total_orders_with_first,
)
from ..search.ptx_search import (
    EnumStats,
    Outcome,
    co_maximal_memory,
    register_assignment,
)
from ..search.values import valuations
from .model import ZooModel
from .models import resolve_zoo


# ----------------------------------------------------------------------
# event predicates (the signature's set vocabulary)
# ----------------------------------------------------------------------

PREDICATES: Dict[str, Callable[[Event], bool]] = {
    "read": lambda e: e.is_read,
    "write": lambda e: e.is_write,
    "fence": lambda e: e.is_fence,
    "release_write": lambda e: e.is_write and e.sem.releases,
    "acquire_read": lambda e: e.is_read and e.sem.acquires,
    "strong_write": lambda e: e.is_write and e.is_strong,
    "strong_read": lambda e: e.is_read and e.is_strong,
    "release_fence": lambda e: e.is_fence and e.sem.releases,
    "acquire_fence": lambda e: e.is_fence and e.sem.acquires,
    "sc_fence": lambda e: e.is_fence and e.sem is Sem.SC,
    # RC11-family classes over PTX events: strong = atomic
    "release_like": lambda e: not e.is_read and e.sem.releases,
    "acquire_like": lambda e: not e.is_write and e.sem.acquires,
    "sc_memory": lambda e: e.is_memory and e.sem is Sem.SC,
}


# ----------------------------------------------------------------------
# base-relation builders (the signature's relation vocabulary)
# ----------------------------------------------------------------------

class _BuildContext:
    """Shared per-program inputs handed to every relation builder."""

    def __init__(
        self,
        events: Tuple[Event, ...],
        init_events: Tuple[Event, ...],
        elab: Elaboration,
        po: Relation,
    ) -> None:
        self.events = events
        self.init_events = init_events
        self.elab = elab
        self.po = po
        self._sloc: Optional[Relation] = None
        self._ms: Optional[Relation] = None

    @property
    def sloc(self) -> Relation:
        if self._sloc is None:
            self._sloc = same_location(self.events)
        return self._sloc

    @property
    def ms(self) -> Relation:
        if self._ms is None:
            self._ms = moral_strength(self.events, self.po)
        return self._ms

    def init_edges(self) -> Relation:
        """Init writes ordered before every program event."""
        return Relation(
            (init, event)
            for init in self.init_events
            for event in self.elab.events
        )


def _build_incl(ctx: _BuildContext) -> Relation:
    """Scope inclusion over PTX events: distinct scoped (strong) pairs
    whose scopes mutually include each other's threads (§4.1)."""
    pairs = []
    for a in ctx.events:
        for b in ctx.events:
            if a is b or a.scope is None or b.scope is None:
                continue
            if mutually_inclusive(a.thread, a.scope, b.thread, b.scope):
                pairs.append((a, b))
    return Relation(pairs)


def _build_internal(ctx: _BuildContext) -> Relation:
    """Same-thread (internal) event pairs, both directions."""
    return Relation(
        (a, b)
        for a in ctx.events
        for b in ctx.events
        if a is not b and a.thread == b.thread
    )


def _tso_fencing(ctx: _BuildContext):
    atomic_halves = {e for pair in ctx.elab.rmw for e in pair}
    return lambda e: e.is_fence or e in atomic_halves


def _build_ppo_tso(ctx: _BuildContext) -> Relation:
    """TSO preserved program order: po minus write-to-read pairs."""
    return Relation(
        (a, b)
        for a, b in ctx.po
        if a.is_memory and b.is_memory
        and not (a.is_write and b.is_read)
    )


def _build_fence_tso(ctx: _BuildContext) -> Relation:
    """TSO fence order: memory pairs with a fencing endpoint (any fence
    or atomic half, §2.2) or an intervening fence."""
    is_fencing = _tso_fencing(ctx)
    pairs = []
    for a, b in ctx.po:
        if not (a.is_memory and b.is_memory):
            continue
        if is_fencing(a) or is_fencing(b) or any(
            e.is_fence and (a, e) in ctx.po and (e, b) in ctx.po
            for e in ctx.events
        ):
            pairs.append((a, b))
    return Relation(pairs)


def _build_rfe(ctx: _BuildContext, rf: Relation) -> Relation:
    """Cross-thread (external) reads-from."""
    return Relation((w, r) for w, r in rf if w.thread != r.thread)


@dataclass(frozen=True)
class Builder:
    """One base-relation builder: ``fn(ctx)`` — or ``fn(ctx, rf)`` for
    builders that must be recomputed per reads-from choice."""

    fn: Callable
    witness_deps: FrozenSet[str] = frozenset()


BUILDERS: Dict[str, Builder] = {
    "po": Builder(lambda ctx: ctx.po),
    "sloc": Builder(lambda ctx: ctx.sloc),
    "po_loc": Builder(lambda ctx: ctx.po & ctx.sloc),
    "rmw": Builder(lambda ctx: ctx.elab.rmw),
    "dep": Builder(lambda ctx: ctx.elab.dep),
    "syncbarrier": Builder(lambda ctx: ctx.elab.syncbarrier),
    "morally_strong": Builder(lambda ctx: ctx.ms),
    # sequenced-before flavours: po extended with init-first edges, with
    # (sb_sync) or without (sb_init) the CTA execution-barrier edges
    "sb_sync": Builder(
        lambda ctx: ctx.po | ctx.init_edges() | ctx.elab.syncbarrier
    ),
    "sb_init": Builder(lambda ctx: ctx.po | ctx.init_edges()),
    "incl": Builder(_build_incl),
    "internal": Builder(_build_internal),
    "ppo_tso": Builder(_build_ppo_tso),
    "fence_tso": Builder(_build_fence_tso),
    "rfe": Builder(_build_rfe, witness_deps=frozenset({"rf"})),
}


def _as_relation(value) -> Relation:
    return value if isinstance(value, Relation) else value.to_relation()


# ----------------------------------------------------------------------
# the generic enumeration
# ----------------------------------------------------------------------

def zoo_candidates(
    model: Union[str, ZooModel],
    program: Program,
    skip_axioms: Tuple[str, ...] = (),
    speculation_values: Sequence[int] = (),
    kernel: str = "bit",
    stats: Optional[EnumStats] = None,
) -> Iterator[Outcome]:
    """Yield the outcome of every ``model``-consistent execution.

    ``skip_axioms`` names cat constraint labels to disable (ablation);
    ``speculation_values`` enables out-of-thin-air valuations;
    ``kernel`` picks the relation representation (identical outcomes);
    ``stats`` receives enumeration counters when provided.
    """
    if isinstance(model, str):
        model = resolve_zoo(model)
    catm = load_model(model.cat)
    labels = {name for name, _ in catm.constraints}
    unknown = set(skip_axioms) - labels
    if unknown:
        raise ValueError(
            f"unknown constraint(s) {sorted(unknown)} for model "
            f"{model.name!r}; have {sorted(labels)}"
        )
    missing = set(catm.free_names) - model.bound_names()
    if missing:
        raise ValueError(
            f"cat model {model.cat!r} reads unbound name(s) "
            f"{sorted(missing)}; declare them in the event signature of "
            f"{model.name!r}"
        )

    elab = elaborate(program)
    init_events = tuple(
        init_write(eid=len(elab.events) + index, loc=loc)
        for index, loc in enumerate(program.locations)
    )
    events: Tuple[Event, ...] = elab.events + init_events
    po = program_order(elab.by_thread)
    ctx = _BuildContext(events, init_events, elab, po)
    base_values = {event.eid: 0 for event in init_events}

    reads = [e for e in elab.events if e.is_read]
    writes_by_loc: Dict[str, List[Event]] = {}
    for event in events:
        if event.is_write:
            writes_by_loc.setdefault(event.loc, []).append(event)
    init_by_loc = {event.loc: event for event in init_events}
    all_writes = [e for e in events if e.is_write]

    ws = model.witnesses
    bindings: Dict[str, Relation] = {}
    for set_name, predicate in model.signature.sets:
        pred = PREDICATES[predicate]
        bindings[set_name] = Relation.set_of(e for e in events if pred(e))
    rf_builders: List[Tuple[str, Builder]] = []
    for rel_name, builder_name in model.signature.relations:
        builder = BUILDERS[builder_name]
        if builder.witness_deps:
            rf_builders.append((rel_name, builder))
            bindings[rel_name] = Relation.empty(2)
        else:
            bindings[rel_name] = builder.fn(ctx)
    bindings["rf"] = Relation.empty(2)
    bindings[ws.co_name] = Relation.empty(2)
    if ws.sc_fences:
        bindings["sc"] = Relation.empty(2)

    stats = stats if stats is not None else EnumStats()
    co_names = frozenset((ws.co_name,))
    forced_expr = None
    if ws.co_style == "partial-ms" and ws.co_forced_from is not None:
        forced_expr = catm.definition(ws.co_forced_from)
    if kernel == "compiled":
        dynamic = (
            ("rf",)
            + tuple(name for name, _ in rf_builders)
            + (("sc",) if ws.sc_fences else ())
            + (ws.co_name,)
        )
        cmodel = compiled_model(
            key=("zoo", model.name, program_signature(program)),
            formulas=catm.constraints,
            exprs=(forced_expr,) if forced_expr is not None else (),
            dynamic=dynamic,
            mutate=co_names,
            warm_names=co_names,
            env_factory=lambda: bit_env(
                events, bindings, sets=model.signature.set_names
            ),
        )
        env0 = CompiledEnv(cmodel, stats=stats)
        orders = oriented_orders_incremental
    elif kernel == "bit":
        env0 = bit_env(events, bindings, sets=model.signature.set_names)
        env0.stats = stats
        orders = oriented_orders
    elif kernel == "set":
        env0 = Env(universe=Relation.set_of(events), bindings=bindings)
        env0.stats = stats
        orders = oriented_orders
    else:
        raise ValueError(f"unknown relation kernel {kernel!r}")

    active = [
        (name, formula)
        for name, formula in catm.constraints
        if name not in skip_axioms
    ]
    co_dependent = [
        (name, f) for name, f in active if ws.co_name in var_deps(f)
    ]
    co_independent = [
        (name, f) for name, f in active if ws.co_name not in var_deps(f)
    ]

    empty_order = env0.make_relation(())
    sc_required: List[FrozenSet[Event]] = []
    if ws.sc_fences:
        sc_fences = [e for e in events if e.is_fence and e.sem is Sem.SC]
        sc_required = [
            frozenset((a, b))
            for a in sc_fences
            for b in sc_fences
            if a.eid < b.eid and (a, b) in ctx.ms
        ]

    ms_write_pairs: List[FrozenSet[Event]] = []
    init_forced = empty_order
    co_kernel_choices: List[object] = []
    if ws.co_style == "partial-ms":
        ms_write_pairs = [
            frozenset((a, b))
            for writes in writes_by_loc.values()
            for i, a in enumerate(writes)
            for b in writes[i + 1 :]
            if (a, b) in ctx.ms
        ]
        init_forced = env0.make_relation(
            (init, other)
            for init in init_events
            for other in writes_by_loc[init.loc]
            if other is not init
        )
    else:
        # total style: the witness space is rf/sc-independent, so the
        # per-location permutations can be enumerated (and kernelized)
        # exactly once for the whole search
        per_loc = []
        for loc, writes in sorted(writes_by_loc.items()):
            init = init_by_loc[loc]
            others = [w for w in writes if w is not init]
            per_loc.append(list(total_orders_with_first(init, others)))
        for combo in itertools.product(*per_loc):
            merged = Relation.empty(2)
            for order in combo:
                merged = merged | order
            co_kernel_choices.append(env0.to_kernel(merged))

    rf_choices = [writes_by_loc[read.loc] for read in reads]
    for rf_assignment in itertools.product(*rf_choices):
        check_deadline()
        stats.rf_assignments += 1
        rf_source = {
            read.eid: write.eid for read, write in zip(reads, rf_assignment)
        }
        rf_rel = Relation(
            (write, read) for read, write in zip(reads, rf_assignment)
        )
        env_rf = env0.bind("rf", env0.to_kernel(rf_rel))
        for rel_name, builder in rf_builders:
            env_rf = env_rf.bind(
                rel_name, env_rf.to_kernel(builder.fn(ctx, rf_rel))
            )

        if ws.sc_fences:
            sc_orders = orders(sc_required, empty_order)
            variants = [
                (env_rf.bind("sc", order),) for order in sc_orders
            ]
        else:
            variants = [(env_rf,)]
        checked = []
        for (env_sc,) in variants:
            if not all(env_sc.formula(f) for _, f in co_independent):
                stats.pre_co_pruned += 1
                continue
            forced = init_forced
            if forced_expr is not None:
                cause = env_sc.expr(forced_expr)
                forced = forced | env_sc.make_relation(
                    (a, b)
                    for a, b in cause
                    if a.is_write and b.is_write and a.loc == b.loc
                )
            for _, f in co_dependent:
                env_sc.warm(f, co_names)
            checked.append((env_sc, forced))
        if not checked:
            continue

        for valuation in valuations(
            elab, rf_source, base_values, speculation_values
        ):
            for env_sc, forced in checked:
                if ws.co_style == "partial-ms":
                    co_orders = orders(ms_write_pairs, forced)
                else:
                    co_orders = iter(co_kernel_choices)
                for co_order in co_orders:
                    check_deadline()
                    stats.candidates_checked += 1
                    env_co = env_sc.bind(ws.co_name, co_order)
                    if all(env_co.formula(f) for _, f in co_dependent):
                        co_rel = _as_relation(co_order)
                        yield Outcome(
                            registers=register_assignment(elab, valuation),
                            memory=co_maximal_memory(
                                all_writes,
                                co_rel,
                                lambda e: valuation[e.eid],
                            ),
                        )


def zoo_outcomes(
    model: Union[str, ZooModel],
    program: Program,
    skip_axioms: Tuple[str, ...] = (),
    speculation_values: Sequence[int] = (),
    kernel: str = "bit",
    stats: Optional[EnumStats] = None,
) -> FrozenSet[Outcome]:
    """All outcomes of ``model``-consistent executions of ``program``."""
    return frozenset(
        zoo_candidates(
            model,
            program,
            skip_axioms=skip_axioms,
            speculation_values=speculation_values,
            kernel=kernel,
            stats=stats,
        )
    )


# ----------------------------------------------------------------------
# cross-model observation equality
# ----------------------------------------------------------------------

def concrete_observations(
    outcomes: FrozenSet[Outcome],
) -> FrozenSet[Tuple[tuple, tuple]]:
    """Flatten outcomes into the concrete final states they stand for.

    Models disagree about which writes coherence *orders*: PTX's partial
    co leaves morally weak write pairs unordered, so a racy location
    reports a value **set** (§8.8.6), where a total-co model (TSO, SC,
    RC11's ``mo``) always reports a singleton.  The raw outcome objects
    are therefore incomparable across witness styles even when the
    observable behaviours coincide.  Concretizing — registers as-is,
    final memory expanded to every per-location value choice — yields
    the set of concrete final states, which *is* comparable: containment
    claims and the conformance matrix both operate on this form.
    """
    observations = set()
    for outcome in outcomes:
        locations = [loc for loc, _ in outcome.memory]
        value_choices = [sorted(values) for _, values in outcome.memory]
        for combo in itertools.product(*value_choices):
            observations.add(
                (outcome.registers, tuple(zip(locations, combo)))
            )
    return frozenset(observations)
