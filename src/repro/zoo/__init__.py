"""repro.zoo — the model zoo: memory models as data, compared N×N.

The zoo turns model registration into declaration: a
:class:`~repro.zoo.model.ZooModel` names a ``.cat`` axiom file, an event
signature (set predicates + base-relation builders from the shared
registries), a witness spec, and optional containment claims.  The
generic engine (:func:`zoo_outcomes`) enumerates any declared model; the
conformance matrix (:func:`~repro.zoo.matrix.build_matrix`) compares all
of them pairwise with witness litmus tests; the fuzz oracle derives a
cross-model check from every declared claim.

The declarations (:mod:`.model`, :mod:`.models`) import eagerly — they
are pure data, cheap enough for the registry.  The engine and matrix
load lazily on first attribute access so ``import repro.registry`` does
not pay for the search machinery.
"""

from .model import Claim, EventSignature, WitnessSpec, ZooModel
from .models import (
    ZOO,
    ZOO_MODELS,
    containment_claims,
    resolve_zoo,
    zoo_names,
)

#: lazily loaded from :mod:`.engine` / :mod:`.matrix` (PEP 562)
_LAZY = {
    "BUILDERS": "engine",
    "PREDICATES": "engine",
    "concrete_observations": "engine",
    "zoo_candidates": "engine",
    "zoo_outcomes": "engine",
    "ModelMatrix": "matrix",
    "MatrixCell": "matrix",
    "build_matrix": "matrix",
    "matrix_corpus": "matrix",
}

__all__ = [
    "Claim",
    "EventSignature",
    "WitnessSpec",
    "ZOO",
    "ZOO_MODELS",
    "ZooModel",
    "containment_claims",
    "resolve_zoo",
    "zoo_names",
    *sorted(_LAZY),
]


def __getattr__(name):
    try:
        module_name = _LAZY[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    from importlib import import_module

    return getattr(import_module(f".{module_name}", __name__), name)
