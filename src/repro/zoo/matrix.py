"""The N×N cross-model conformance matrix.

Every registered zoo model runs the full litmus corpus (the hand-written
suite plus the length-4 generated corpus); each ordered model pair is
then classified by comparing *concrete observations* test by test:

* ``equivalent`` — identical observations on every corpus test;
* ``stronger`` — the row model's observations are contained in the
  column model's on every test, strictly on at least one (the row
  allows less: it sits below the column in the weakness order);
* ``weaker`` — the mirror image;
* ``incomparable`` — each side allows an observation the other forbids.

Strict-containment and incomparability cells carry **witness tests**:
the first corpus test (in corpus order) exhibiting an observation one
side allows and the other does not, so every off-diagonal verdict in the
table is backed by a concrete litmus test.

Determinism: the corpus order is fixed, model names are sorted, cells
are emitted in sorted ``(left, right)`` order, and witnesses are
first-in-corpus-order — two runs of ``ptxmm matrix`` produce
byte-identical JSON (the CI golden relies on this).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Tuple

from ..litmus.config import RunConfig
from ..litmus.test import LitmusTest
from .engine import concrete_observations
from .models import resolve_zoo, zoo_names

#: bumped when the matrix JSON layout changes incompatibly
MATRIX_SCHEMA = 1

_RELATIONS = ("equivalent", "stronger", "weaker", "incomparable")

_SYMBOLS = {
    "equivalent": "≡",
    "stronger": "⊏",
    "weaker": "⊐",
    "incomparable": "≠≠",
}


class MatrixError(RuntimeError):
    """A matrix build failed (a corpus run did not complete cleanly)."""


@dataclass(frozen=True)
class MatrixCell:
    """One ordered model pair's verdict, with witnesses.

    ``witness_left_only`` names the first corpus test on which ``left``
    allows an observation ``right`` forbids (present for ``weaker`` and
    ``incomparable``); ``witness_right_only`` is the mirror (present for
    ``stronger`` and ``incomparable``).
    """

    left: str
    right: str
    relation: str
    witness_left_only: Optional[str] = None
    witness_right_only: Optional[str] = None

    def __post_init__(self):
        if self.relation not in _RELATIONS:
            raise ValueError(f"unknown cell relation {self.relation!r}")

    def to_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "left": self.left,
            "right": self.right,
            "relation": self.relation,
        }
        if self.witness_left_only is not None:
            payload["witness_left_only"] = self.witness_left_only
        if self.witness_right_only is not None:
            payload["witness_right_only"] = self.witness_right_only
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping) -> "MatrixCell":
        return cls(
            left=payload["left"],
            right=payload["right"],
            relation=payload["relation"],
            witness_left_only=payload.get("witness_left_only"),
            witness_right_only=payload.get("witness_right_only"),
        )


@dataclass(frozen=True)
class ModelMatrix:
    """The full conformance matrix over one corpus."""

    models: Tuple[str, ...]
    tests: Tuple[str, ...]
    cells: Tuple[MatrixCell, ...]

    def cell(self, left: str, right: str) -> MatrixCell:
        for cell in self.cells:
            if cell.left == left and cell.right == right:
                return cell
        raise KeyError((left, right))

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": MATRIX_SCHEMA,
            "models": list(self.models),
            "tests": list(self.tests),
            "cells": [cell.to_dict() for cell in self.cells],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_dict(cls, payload: Mapping) -> "ModelMatrix":
        schema = payload.get("schema")
        if schema != MATRIX_SCHEMA:
            raise MatrixError(
                f"matrix schema {schema!r} is not the supported "
                f"{MATRIX_SCHEMA}"
            )
        return cls(
            models=tuple(payload["models"]),
            tests=tuple(payload["tests"]),
            cells=tuple(
                MatrixCell.from_dict(cell) for cell in payload["cells"]
            ),
        )

    @classmethod
    def from_json(cls, text: str) -> "ModelMatrix":
        return cls.from_dict(json.loads(text))

    def diff(self, other: "ModelMatrix") -> List[str]:
        """Human-readable cell flips between two matrices (``--check``).

        Reports model-set changes and relation flips; witness drift on an
        unchanged relation is reported too (it signals a corpus or
        enumeration-order change the golden should track).
        """
        problems: List[str] = []
        if self.models != other.models:
            problems.append(
                f"model set changed: {list(other.models)} -> "
                f"{list(self.models)}"
            )
            return problems
        theirs = {(c.left, c.right): c for c in other.cells}
        for cell in self.cells:
            old = theirs.get((cell.left, cell.right))
            if old is None:
                problems.append(f"new cell {cell.left} × {cell.right}")
            elif cell.relation != old.relation:
                problems.append(
                    f"{cell.left} × {cell.right}: {old.relation} -> "
                    f"{cell.relation}"
                )
            elif cell != old:
                problems.append(
                    f"{cell.left} × {cell.right}: witness changed "
                    f"({old.witness_left_only!r}/{old.witness_right_only!r} "
                    f"-> {cell.witness_left_only!r}/"
                    f"{cell.witness_right_only!r})"
                )
        return problems

    def format_table(self) -> str:
        """The matrix as a text table (row relation vs. column model).

        ``⊏`` means the row model is strictly stronger (its behaviours
        are a strict subset of the column's), ``⊐`` strictly weaker,
        ``≡`` equivalent, ``≠≠`` incomparable.
        """
        header = [""] + list(self.models)
        rows = [header]
        for left in self.models:
            row = [left]
            for right in self.models:
                if left == right:
                    row.append("·")
                else:
                    row.append(_SYMBOLS[self.cell(left, right).relation])
            rows.append(row)
        widths = [
            max(len(row[col]) for row in rows)
            for col in range(len(header))
        ]
        lines = []
        for index, row in enumerate(rows):
            lines.append(
                "  ".join(
                    text.ljust(width) for text, width in zip(row, widths)
                ).rstrip()
            )
            if index == 0:
                lines.append(
                    "  ".join("-" * width for width in widths)
                )
        return "\n".join(lines)

    def format_witnesses(self) -> str:
        """One line per strict/incomparable cell, naming its witnesses."""
        lines = []
        for cell in self.cells:
            if cell.relation == "stronger":
                lines.append(
                    f"{cell.left} ⊏ {cell.right}: "
                    f"{cell.right} additionally allows "
                    f"{cell.witness_right_only}"
                )
            elif cell.relation == "incomparable":
                lines.append(
                    f"{cell.left} ≠≠ {cell.right}: "
                    f"{cell.left} alone allows {cell.witness_left_only}; "
                    f"{cell.right} alone allows {cell.witness_right_only}"
                )
        return "\n".join(lines)


# ----------------------------------------------------------------------
# corpus
# ----------------------------------------------------------------------

def matrix_corpus(fast: bool = False) -> Tuple[Tuple[str, LitmusTest], ...]:
    """The ``(name, test)`` corpus the matrix runs: the hand-written
    suite, plus (unless ``fast``) the length-4 generated corpus."""
    from ..litmus.corpus import corpus_length4
    from ..litmus.suite import SUITE

    entries: List[Tuple[str, LitmusTest]] = [
        (test.name, test) for test in SUITE
    ]
    if not fast:
        entries.extend(
            (f"{name}@{variant}", generated.test)
            for name, variant, generated in corpus_length4()
        )
    return tuple(entries)


# ----------------------------------------------------------------------
# building
# ----------------------------------------------------------------------

Observation = Tuple[tuple, tuple]
ObservationTable = Dict[Tuple[str, str], FrozenSet[Observation]]


def observation_table(
    models: Sequence[str],
    corpus: Sequence[Tuple[str, LitmusTest]],
    session=None,
    timeout: Optional[float] = None,
) -> ObservationTable:
    """Concrete observations for every ``(model, test)`` pair.

    With a :class:`~repro.litmus.session.Session`, all model×test tasks
    go through one batched ``run_tasks`` call (worker-pool parallelism
    plus result caching); without one, they run in-process.  Either way
    the decision path is the standard runner (per-model option
    filtering included), so the matrix sees exactly the outcomes
    ``ptxmm run`` would report.
    """
    from ..litmus.runner import decide

    configs = {
        model: RunConfig(model=model, engine="enumerative", timeout=timeout)
        for model in models
    }
    keys = [
        (model, name) for model in models for name, _ in corpus
    ]
    tasks = [
        (test, configs[model])
        for model in models
        for _, test in corpus
    ]
    if session is not None:
        results = session.run_tasks(tasks)
    else:
        results = [decide(test, config) for test, config in tasks]
    table: ObservationTable = {}
    for (model, name), result in zip(keys, results):
        if result.status != "ok":
            raise MatrixError(
                f"{name} under {model} did not complete: "
                f"{result.status} ({result.detail or 'no detail'})"
            )
        table[(model, name)] = concrete_observations(result.outcomes)
    return table


def assemble_matrix(
    models: Sequence[str],
    corpus_names: Sequence[str],
    table: Mapping[Tuple[str, str], FrozenSet[Observation]],
) -> ModelMatrix:
    """Classify every ordered model pair from an observation table."""
    models = tuple(sorted(models))
    cells = []
    for left in models:
        for right in models:
            if left == right:
                continue
            left_only = None
            right_only = None
            for name in corpus_names:
                left_obs = table[(left, name)]
                right_obs = table[(right, name)]
                if left_only is None and left_obs - right_obs:
                    left_only = name
                if right_only is None and right_obs - left_obs:
                    right_only = name
                if left_only and right_only:
                    break
            if left_only is None and right_only is None:
                relation = "equivalent"
            elif left_only is None:
                relation = "stronger"
            elif right_only is None:
                relation = "weaker"
            else:
                relation = "incomparable"
            cells.append(
                MatrixCell(
                    left=left,
                    right=right,
                    relation=relation,
                    witness_left_only=left_only,
                    witness_right_only=right_only,
                )
            )
    cells.sort(key=lambda cell: (cell.left, cell.right))
    return ModelMatrix(
        models=models, tests=tuple(corpus_names), cells=tuple(cells)
    )


def build_matrix(
    models: Optional[Sequence[str]] = None,
    fast: bool = False,
    session=None,
    timeout: Optional[float] = None,
) -> ModelMatrix:
    """Run the corpus through every model and classify all pairs."""
    if models is None:
        models = zoo_names()
    else:
        for name in models:
            resolve_zoo(name)
        models = tuple(sorted(set(models)))
    corpus = matrix_corpus(fast=fast)
    table = observation_table(
        models, corpus, session=session, timeout=timeout
    )
    return assemble_matrix(models, [name for name, _ in corpus], table)


def verify_claims(matrix: ModelMatrix) -> List[str]:
    """Check every declared containment claim against a built matrix.

    Returns human-readable violations (empty = all claims hold).  A
    claim ``A ⊑ B`` is confirmed by a ``stronger`` or ``equivalent``
    cell; a ``weaker`` or ``incomparable`` cell refutes it and the
    witness test names the refuting behaviour.
    """
    from .models import containment_claims

    problems = []
    present = set(matrix.models)
    for claim in containment_claims():
        if claim.stronger not in present or claim.weaker not in present:
            continue
        cell = matrix.cell(claim.stronger, claim.weaker)
        if cell.relation not in ("stronger", "equivalent"):
            problems.append(
                f"declared {claim.stronger} ⊑ {claim.weaker} refuted: "
                f"cell is {cell.relation} (witness: "
                f"{cell.witness_left_only})"
            )
    return problems
