"""One registry for memory models and decision engines.

Every layer that used to hard-code ``if/elif`` chains over model or
engine names — the runner's dispatch, the CLI's ``choices=`` lists, the
fuzz oracle's engine battery, the serving layer's request validation —
consults this module instead.  ``MODELS`` and ``ENGINES`` are *data*:
adding a model or engine means adding one spec here, and every consumer
(dispatch, validation, help text, capability gating) picks it up.

Unknown names raise :class:`UnknownNameError` with one uniform message
listing the valid choices, wherever the name enters the system (config
construction, CLI, HTTP request, compare search).

Capability flags drive uniform gating:

* ``ptx_only`` — the engine's encoding exists only for the PTX model;
  requesting it with another model is one error, raised in one place;
* ``supports_outcomes`` — the engine reports the full outcome set (the
  strong differential comparison); ``symbolic`` answers only the
  condition;
* ``certifiable`` — the engine natively produces checkable proof
  artifacts (DRAT traces / witnesses).  ``certify=True`` runs route
  eligible tests through the certifiable engine regardless of the
  configured one.

Import discipline: the spec ``run`` callables import their engines
lazily, so importing the registry (and therefore
:mod:`repro.litmus.config`) stays cheap and cycle-free.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, Optional, Tuple


class UnknownNameError(KeyError, ValueError):
    """An unrecognized model or engine name.

    Subclasses both ``KeyError`` and ``ValueError`` so call sites that
    historically raised either keep their contracts; the message is the
    single uniform rendering either way.
    """

    def __init__(self, kind: str, name: str, valid) -> None:
        self.kind = kind
        self.name = name
        self.valid = tuple(sorted(valid))
        super().__init__(name)

    def __str__(self) -> str:
        return (
            f"unknown {self.kind} {self.name!r}; "
            f"valid {self.kind}s: {', '.join(self.valid)}"
        )


# ----------------------------------------------------------------------
# relation kernels
# ----------------------------------------------------------------------

#: Relation-representation kernels the enumerative searches understand.
#: Verdicts and outcome sets are kernel-independent by construction (the
#: agreement tests pin this); the choice only moves the time/space
#: trade-off.  Models whose ``ModelSpec.kernels`` is empty (operational
#: machines, the CPU total searches, the legacy PTX variant) have no
#: kernel surface and silently ignore the configured kernel.
KERNELS: Dict[str, str] = {
    "set": "hashed tuple-set relations (reference semantics)",
    "bit": "dense bitset relations (interpreted hot path, default)",
    "compiled": "per-test specialized axiom checkers (repro.lang.compile)",
}


def kernel_names() -> Tuple[str, ...]:
    """Every relation kernel name, in registration order."""
    return tuple(KERNELS)


def resolve_kernel(name: str) -> str:
    """Validate a kernel name, or the one uniform unknown-name error."""
    if name not in KERNELS:
        raise UnknownNameError("kernel", name, KERNELS)
    return name


# ----------------------------------------------------------------------
# model outcome functions (lazy imports: keep the registry import-light)
# ----------------------------------------------------------------------

def _ptx_outcomes(program, **opts):
    from .search.ptx_search import allowed_outcomes

    return allowed_outcomes(program, **opts)


def _ptx_legacy_outcomes(program, **opts):
    from .ptx.legacy import legacy_allowed_outcomes

    return legacy_allowed_outcomes(program, **opts)


def _tso_outcomes(program, **opts):
    from .search.total_search import allowed_outcomes_total
    from .tso import check_execution as tso_check

    opts.pop("skip_axioms", None)
    opts.pop("stats", None)
    return allowed_outcomes_total(program, tso_check, **opts)


def _sc_outcomes(program, **opts):
    from .scmodel import check_execution as sc_check
    from .search.total_search import allowed_outcomes_total

    opts.pop("skip_axioms", None)
    opts.pop("stats", None)
    return allowed_outcomes_total(program, sc_check, **opts)


def _sc_op_outcomes(program, **opts):
    from .operational import sc_operational_outcomes

    return sc_operational_outcomes(program)


def _tso_op_outcomes(program, **opts):
    from .operational import tso_operational_outcomes

    return tso_operational_outcomes(program)


def _zoo_run(name: str) -> Callable:
    """The generic zoo enumeration, curried on the declared model."""

    def run(program, **opts):
        from .zoo.engine import zoo_outcomes

        return zoo_outcomes(name, program, **opts)

    return run


@dataclass(frozen=True)
class ModelSpec:
    """One memory model: its outcome function plus its option surface."""

    name: str
    #: ``(program, **opts) -> FrozenSet[Outcome]``
    run: Callable = field(repr=False)
    #: search options the model's engine understands
    opts: FrozenSet[str] = frozenset()
    #: PTX-only options tolerated and dropped (a test tagged with e.g.
    #: ``skip_axioms`` must still be runnable under tso/sc)
    ignored_opts: FrozenSet[str] = frozenset()
    #: ``run`` accepts a ``stats=EnumStats()`` observability sink
    enum_stats: bool = False
    #: relation kernels ``run`` accepts via ``kernel=``; empty means the
    #: model has no kernel surface and the configured kernel is ignored
    kernels: FrozenSet[str] = frozenset()
    #: the model has a symbolic (SAT) encoding — certify-eligible
    symbolic: bool = False
    #: the :mod:`repro.zoo` declaration backing this spec, if any
    zoo: Optional[str] = None
    description: str = ""


#: zoo models with a dedicated engine: the declaration still defines the
#: option surface and claims, but dispatch goes to the optimized native
#: search (prunes, saturation) rather than the generic enumeration
_NATIVE_RUNS: Dict[str, Callable] = {
    "ptx": _ptx_outcomes,
    "tso": _tso_outcomes,
    "sc": _sc_outcomes,
}


def _zoo_specs() -> Tuple[ModelSpec, ...]:
    """One ``ModelSpec`` per zoo declaration — the registry entries are
    pure data derived from :mod:`repro.zoo.models`."""
    from .zoo.models import ZOO_MODELS

    specs = []
    for model in ZOO_MODELS:
        run = _NATIVE_RUNS.get(model.name) or _zoo_run(model.name)
        specs.append(
            ModelSpec(
                model.name,
                run,
                opts=model.opts,
                ignored_opts=model.ignored_opts,
                # every enumerative path except the CPU total searches
                # threads EnumStats through (the zoo engine always does);
                # the same paths expose the relation-kernel knob
                enum_stats=model.name not in ("tso", "sc"),
                kernels=(
                    frozenset()
                    if model.name in ("tso", "sc")
                    else frozenset(KERNELS)
                ),
                symbolic=model.name == "ptx",
                zoo=model.name,
                description=model.description,
            )
        )
    return tuple(specs)


MODELS: Dict[str, ModelSpec] = {
    spec.name: spec
    for spec in (
        *_zoo_specs(),
        ModelSpec(
            "ptx-legacy",
            _ptx_legacy_outcomes,
            opts=frozenset({"skip_axioms", "speculation_values"}),
            description="pre-Volta variant: membar without an sc order",
        ),
        # the machines have no search knobs at all: options that merely
        # annotate a test must not make it unrunnable operationally
        ModelSpec(
            "sc-op",
            _sc_op_outcomes,
            ignored_opts=frozenset({"skip_axioms", "speculation_values"}),
            description="operational SC machine (interleaving oracle)",
        ),
        ModelSpec(
            "tso-op",
            _tso_op_outcomes,
            ignored_opts=frozenset({"skip_axioms", "speculation_values"}),
            description="operational TSO machine (store-buffer oracle)",
        ),
    )
}


def model_names() -> Tuple[str, ...]:
    """Every registered model name, sorted (CLI ``choices=`` source)."""
    return tuple(sorted(MODELS))


def resolve_model(name: str) -> ModelSpec:
    """The spec for ``name``, or the one uniform unknown-name error."""
    try:
        return MODELS[name]
    except KeyError:
        raise UnknownNameError("model", name, MODELS) from None


def partition_opts(
    model: str, opts: Dict[str, object]
) -> Tuple[Dict[str, object], Tuple[str, ...]]:
    """Split options into (understood, silently-droppable) for ``model``.

    Unknown options raise — without this, a PTX-only option would reach
    the model's search function and surface as a bare ``TypeError`` deep
    inside the enumerator.
    """
    spec = resolve_model(model)
    kept: Dict[str, object] = {}
    dropped = []
    for name, value in opts.items():
        if name in spec.opts:
            kept[name] = value
        elif name in spec.ignored_opts:
            dropped.append(name)
        else:
            raise ValueError(
                f"search option {name!r} is not supported by model {model!r} "
                f"(supported: {sorted(spec.opts)})"
            )
    return kept, tuple(sorted(dropped))


# ----------------------------------------------------------------------
# engines
# ----------------------------------------------------------------------

def _check_ptx_only(spec: "EngineSpec", model: str) -> None:
    if spec.ptx_only and model != "ptx":
        raise ValueError(
            f"the {spec.name!r} engine supports only the 'ptx' model, "
            f"not {model!r}"
        )


def _kernel_opts(config, opts):
    """Inject the configured relation kernel for models that take one."""
    if resolve_model(config.model).kernels:
        return dict(opts, kernel=config.kernel)
    return opts


def _run_enumerative(test, config, opts):
    """Explicit candidate-execution enumeration, any model."""
    from .search.ptx_search import EnumStats

    spec = resolve_model(config.model)
    opts = _kernel_opts(config, opts)
    enum_stats = None
    if spec.enum_stats:
        enum_stats = EnumStats()
        opts = dict(opts, stats=enum_stats)
    outcomes = spec.run(test.program, **opts)
    return test.condition_observed(outcomes), outcomes, None, enum_stats


def _run_symbolic(test, config, opts):
    """One bounded SAT query (§5.2); verdict only, no outcome set.

    Falls back to the enumerative engine when the test carries search
    options (the single-query encoding has no search knobs) or when the
    condition is value-dependent and cannot be phrased relationally.
    """
    from .kodkod.litmus import UnsupportedCondition, symbolic_outcome_allowed

    if not opts:
        stats: list = []
        try:
            observed = symbolic_outcome_allowed(test, stats=stats)
        except UnsupportedCondition:
            pass
        else:
            merged = stats[0]
            for snapshot in stats[1:]:
                merged = merged + snapshot
            return observed, frozenset(), merged, None
    outcomes = resolve_model(config.model).run(
        test.program, **_kernel_opts(config, opts)
    )
    return test.condition_observed(outcomes), outcomes, None, None


def _run_symbolic_enum(test, config, opts):
    """SAT-instance enumeration producing the *full outcome set*.

    Unlike ``symbolic`` (one query, verdict only) this decodes every
    axiom-consistent relational instance into an outcome, so the result
    carries the same outcome set the enumerative engine reports — the
    comparison the differential fuzzer's oracle is built on.  Falls back
    to the enumerative engine when the test carries search options or
    when write values are data-dependent and instances cannot be decoded
    (``solver_stats`` is then ``None``, letting callers detect the
    fallback).
    """
    from .kodkod.litmus import UnsupportedProgram, symbolic_outcomes
    from .sat.solver import SolverStats

    if not opts:
        stats: list = []
        try:
            outcomes = symbolic_outcomes(test, stats=stats)
        except UnsupportedProgram:
            pass
        else:
            merged = stats[0] if stats else SolverStats()
            for snapshot in stats[1:]:
                merged = merged + snapshot
            return test.condition_observed(outcomes), outcomes, merged, None
    outcomes = resolve_model(config.model).run(
        test.program, **_kernel_opts(config, opts)
    )
    return test.condition_observed(outcomes), outcomes, None, None


def _run_rf_check(test, config, opts):
    """Reads-from enumeration decided by coherence saturation."""
    from .search.ptx_search import EnumStats
    from .search.rf_check import rf_check_outcomes

    enum_stats = EnumStats()
    outcomes = rf_check_outcomes(
        test.program, stats=enum_stats, **_kernel_opts(config, opts)
    )
    return test.condition_observed(outcomes), outcomes, None, enum_stats


@dataclass(frozen=True)
class EngineSpec:
    """One decision engine: dispatch callable plus capability flags."""

    name: str
    #: ``(test, config, opts) ->
    #:     (observed, outcomes, solver_stats, enum_stats)``
    run: Callable = field(repr=False)
    #: the encoding exists only for the PTX model
    ptx_only: bool = False
    #: natively produces checkable proof artifacts (DRAT/witness)
    certifiable: bool = False
    #: reports the full outcome set (not just the condition verdict)
    supports_outcomes: bool = True
    description: str = ""

    def check_model(self, model: str) -> None:
        """Raise if this engine cannot decide tests under ``model``."""
        _check_ptx_only(self, model)

    def decide(self, test, config, opts):
        """Run with the uniform capability gate applied."""
        self.check_model(config.model)
        return self.run(test, config, opts)


ENGINES: Dict[str, EngineSpec] = {
    spec.name: spec
    for spec in (
        EngineSpec(
            "enumerative",
            _run_enumerative,
            description="explicit candidate-execution enumeration",
        ),
        EngineSpec(
            "symbolic",
            _run_symbolic,
            ptx_only=True,
            certifiable=True,
            supports_outcomes=False,
            description="one bounded SAT query; verdict only",
        ),
        EngineSpec(
            "symbolic-enum",
            _run_symbolic_enum,
            ptx_only=True,
            description="SAT instance enumeration; full outcome set",
        ),
        EngineSpec(
            "rf-check",
            _run_rf_check,
            ptx_only=True,
            description="rf enumeration decided by coherence saturation",
        ),
    )
}


def engine_names() -> Tuple[str, ...]:
    """Every registered engine name, in registration order."""
    return tuple(ENGINES)


def resolve_engine(name: str) -> EngineSpec:
    """The spec for ``name``, or the one uniform unknown-name error."""
    try:
        return ENGINES[name]
    except KeyError:
        raise UnknownNameError("engine", name, ENGINES) from None


def engines_for_model(model: str) -> Tuple[str, ...]:
    """The engines able to decide tests under ``model``."""
    resolve_model(model)
    return tuple(
        name for name, spec in ENGINES.items()
        if not spec.ptx_only or model == "ptx"
    )
