"""Certificates for litmus verdicts (the "don't trust the solver" layer).

The paper's §5.3 argument machine-checks the *metatheory*; this module
machine-checks the *per-test verdicts*.  :func:`certify_symbolic` decides
a litmus test with one bounded SAT query while logging a DRAT trace, then
has the independent checker validate whichever artifact the polarity
demands:

* UNSAT (condition FORBIDDEN) — the trace must be a valid refutation of
  the original CNF (:func:`repro.cert.checker.check_unsat_proof`);
* SAT (condition ALLOWED) — the model must be a total assignment
  satisfying every original clause *and* decode to a relational instance
  inside the kodkod translation bounds.

The outcome is a :class:`Certificate`: polarity, content digest, check
status, sizes and check time — small enough to serialize into results and
the on-disk cache without hauling whole traces around.

:func:`certify_enumeration` certifies the §5.2 "enumerate all bounded
instances" methodology end-to-end: the final UNSAT of an exhausted
enumeration is checked against the original CNF *plus* the blocking
clauses the solver pushed, and the trace's extension steps must match the
blocking clauses of the yielded instances exactly — a checked claim that
the enumeration was complete.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..kodkod.finder import Instance, translate_problem
from ..sat.solver import Solver, SolverStats
from .checker import CheckFailure, check_unsat_proof, check_witness
from .drat import EXTEND, DratLogger

#: certificate polarities
UNSAT, SAT, NONE = "unsat", "sat", "none"

#: certificate statuses
VERIFIED, FAILED, SKIPPED = "verified", "failed", "skipped"


@dataclass(frozen=True)
class Certificate:
    """The independently checked evidence behind one verdict.

    ``polarity`` is ``"unsat"`` (DRAT refutation), ``"sat"`` (witness
    assignment) or ``"none"`` (nothing checkable was produced);
    ``status`` is ``"verified"``, ``"failed"`` or ``"skipped"``.
    ``digest`` content-addresses the trace/witness, ``steps`` counts
    trace steps (or assigned variables for witnesses), ``clauses`` the
    CNF clauses validated against, and ``check_time`` the seconds the
    checker spent.
    """

    polarity: str
    status: str
    digest: Optional[str] = None
    steps: int = 0
    clauses: int = 0
    check_time: float = 0.0
    detail: Optional[str] = None

    @property
    def verified(self) -> bool:
        return self.status == VERIFIED

    @property
    def failed(self) -> bool:
        return self.status == FAILED

    def format(self) -> str:
        """A compact one-line rendering for CLI output."""
        body = (
            f"{self.polarity}/{self.status} steps={self.steps} "
            f"clauses={self.clauses} check={self.check_time * 1000:.1f}ms"
        )
        if self.digest:
            body += f" digest={self.digest[:12]}"
        if self.detail:
            body += f" ({self.detail})"
        return body


def skipped_certificate(reason: str) -> Certificate:
    """A certificate recording that this verdict was not certifiable."""
    return Certificate(polarity=NONE, status=SKIPPED, detail=reason)


def _witness_digest(model: Dict[int, bool]) -> str:
    hasher = hashlib.sha256()
    for var in sorted(model):
        hasher.update(f"{var}:{int(model[var])}\n".encode("ascii"))
    return hasher.hexdigest()


def certify_unsat(cnf, logger: DratLogger) -> Certificate:
    """Check a refutation trace against the CNF it claims to refute."""
    started = time.perf_counter()
    try:
        check_unsat_proof(cnf.num_vars, cnf.clauses, logger.steps)
    except CheckFailure as exc:
        return Certificate(
            polarity=UNSAT,
            status=FAILED,
            digest=logger.digest(),
            steps=len(logger.steps),
            clauses=len(cnf.clauses),
            check_time=time.perf_counter() - started,
            detail=str(exc),
        )
    return Certificate(
        polarity=UNSAT,
        status=VERIFIED,
        digest=logger.digest(),
        steps=len(logger.steps),
        clauses=len(cnf.clauses),
        check_time=time.perf_counter() - started,
    )


def certify_witness(translation, model: Dict[int, bool]) -> Certificate:
    """Check a satisfying assignment against the CNF and the bounds.

    Beyond clause satisfaction, the assignment must be total (a partial
    model could hide an unsatisfied clause behind ``dict.get`` defaults)
    and its decoded relational instance must respect every lower/upper
    bound of the translation — the witness is then a genuine bounded
    instance, not merely a propositional artifact.
    """
    cnf = translation.cnf
    started = time.perf_counter()
    detail: Optional[str] = None
    try:
        missing = [
            var for var in range(1, cnf.num_vars + 1) if var not in model
        ]
        if missing:
            raise CheckFailure(
                f"witness is partial: {len(missing)} unassigned variable(s), "
                f"first {missing[0]}"
            )
        check_witness(cnf.clauses, model)
        decoded = translation.decode(model)
        for name, bound in translation.bounds.relations.items():
            tuples = frozenset(decoded.get(name, ()))
            if not bound.lower <= tuples:
                raise CheckFailure(
                    f"witness violates lower bound of relation {name!r}"
                )
            if not tuples <= bound.upper:
                raise CheckFailure(
                    f"witness exceeds upper bound of relation {name!r}"
                )
    except CheckFailure as exc:
        detail = str(exc)
    return Certificate(
        polarity=SAT,
        status=FAILED if detail else VERIFIED,
        digest=_witness_digest(model),
        steps=len(model),
        clauses=len(cnf.clauses),
        check_time=time.perf_counter() - started,
        detail=detail,
    )


def certify_symbolic(test) -> Tuple[bool, Certificate, SolverStats]:
    """Decide a litmus condition with one SAT query and certify the verdict.

    Returns ``(observed, certificate, solver_stats)``.  Raises
    :class:`repro.kodkod.litmus.UnsupportedCondition` (before any solving)
    when the test cannot be phrased relationally — callers fall back to
    the enumerative engine and attach a skipped certificate.
    """
    from ..kodkod.litmus import encode_litmus

    goal, bounds, configure = encode_litmus(test)
    translation = translate_problem(goal, bounds, configure)
    logger = DratLogger()
    solver = Solver(translation.cnf, proof=logger)
    satisfiable = solver.solve()
    stats = solver.stats.copy()
    translation.solver_stats.append(stats)
    if satisfiable:
        certificate = certify_witness(translation, solver.model())
    else:
        certificate = certify_unsat(translation.cnf, logger)
    return satisfiable, certificate, stats


def certify_enumeration(test) -> Tuple[List[Instance], Certificate]:
    """Enumerate a test's axiom-consistent instances with a completeness proof.

    Drives :func:`repro.kodkod.litmus.symbolic_consistent_instances` with
    a DRAT logger attached and every blocking clause exposed, then checks:

    * the trace's extension steps are exactly the pushed blocking clauses
      (one per yielded instance, in order) — nothing was blocked that was
      not reported, and vice versa;
    * the final UNSAT is a valid refutation of the original CNF plus
      those blocking clauses.

    Returns the instances and the completeness certificate.
    """
    from ..kodkod.litmus import encode_litmus
    from ..relation import Relation
    from ..sat.solver import enumerate_models

    goal, bounds, configure = encode_litmus(test, include_condition=False)
    translation = translate_problem(goal, bounds, configure)
    logger = DratLogger()
    blocking: List[List[int]] = []
    found = [
        Instance(
            relations={
                name: Relation(tuples)
                for name, tuples in translation.decode(model).items()
            }
        )
        for model in enumerate_models(
            translation.cnf,
            projection=translation.projection_vars(),
            proof=logger,
            blocking_out=blocking,
        )
    ]
    extensions = [list(lits) for kind, lits in logger.steps if kind == EXTEND]
    if extensions != blocking:
        return found, Certificate(
            polarity=UNSAT,
            status=FAILED,
            digest=logger.digest(),
            steps=len(logger.steps),
            detail=(
                f"trace extensions ({len(extensions)}) do not match the "
                f"pushed blocking clauses ({len(blocking)})"
            ),
        )
    if not logger.empty_derived:
        return found, skipped_certificate(
            "enumeration ended without a refutation (exactly bounded "
            "problem); nothing to check"
        )
    return found, certify_unsat(translation.cnf, logger)
