"""DRAT-style proof logging for the CDCL backend.

A :class:`DratLogger` plugs into :class:`repro.sat.solver.Solver` (via the
``proof=`` constructor argument) and records the solver's clause traffic as
an ordered trace of steps:

* ``("a", lits)`` — a *derived* addition: a learned clause (or the final
  empty clause).  Each must be a RUP consequence of the formula so far;
  the independent checker re-derives it by unit propagation.
* ``("d", lits)`` — a deletion from the learned-clause database
  (:meth:`Solver._reduce_db`).  Deletions are an optimisation hint for the
  checker; they never affect soundness.
* ``("e", lits)`` — an *extension*: an input clause pushed into a live
  solver through :meth:`Solver.add_clause`.  Blocking clauses pushed
  during incremental model enumeration land here.  Extensions are new
  assumptions, not consequences — the checker adds them unchecked, so an
  UNSAT trace with extensions certifies "CNF plus these extensions is
  unsatisfiable" (exactly the enumeration-completeness claim of §5.2).

The trace lives in memory (``steps``) and can simultaneously be streamed
line-by-line to a text sink, in the plain-text format of the DRAT tools:
``<lits> 0`` for additions, ``d <lits> 0`` for deletions, and (our
incremental extension) ``e <lits> 0`` for extensions.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, List, Optional, TextIO, Tuple

#: One trace step: (kind, literal tuple).  Kinds: "a" / "d" / "e".
Step = Tuple[str, Tuple[int, ...]]

ADD = "a"
DELETE = "d"
EXTEND = "e"

_KINDS = frozenset((ADD, DELETE, EXTEND))


def format_step(step: Step) -> str:
    """One trace step as a DRAT text line (without the newline)."""
    kind, lits = step
    body = " ".join(map(str, lits + (0,)))
    return body if kind == ADD else f"{kind} {body}"


def write_drat(steps: Iterable[Step], stream: TextIO) -> None:
    """Write a whole trace in DRAT text format."""
    for step in steps:
        stream.write(format_step(step) + "\n")


def read_drat(stream: TextIO) -> List[Step]:
    """Parse a DRAT text trace back into a step list.

    Tolerates blank lines and ``c``-prefixed comments; everything else
    must be a well-formed step terminated by ``0``.
    """
    steps: List[Step] = []
    for lineno, raw in enumerate(stream, start=1):
        line = raw.strip()
        if not line or line.startswith("c"):
            continue
        tokens = line.split()
        kind = ADD
        if tokens[0] in (DELETE, EXTEND):
            kind = tokens[0]
            tokens = tokens[1:]
        try:
            lits = [int(token) for token in tokens]
        except ValueError as exc:
            raise ValueError(f"line {lineno}: non-integer literal: {exc}")
        if not lits or lits[-1] != 0:
            raise ValueError(f"line {lineno}: step not terminated by 0: {line!r}")
        if any(lit == 0 for lit in lits[:-1]):
            raise ValueError(f"line {lineno}: literal 0 inside a step: {line!r}")
        steps.append((kind, tuple(lits[:-1])))
    return steps


def trace_digest(steps: Iterable[Step]) -> str:
    """A stable sha256 content address of a trace."""
    hasher = hashlib.sha256()
    for step in steps:
        hasher.update(format_step(step).encode("ascii"))
        hasher.update(b"\n")
    return hasher.hexdigest()


class DratLogger:
    """Accumulates (and optionally streams) the solver's proof trace.

    The solver calls :meth:`add`, :meth:`delete` and :meth:`extend`; the
    logger copies the literals immediately (solver clauses are mutated in
    place by watch maintenance, so holding references would corrupt the
    trace).
    """

    def __init__(self, stream: Optional[TextIO] = None):
        self.steps: List[Step] = []
        self.stream = stream

    def _record(self, kind: str, lits: Iterable[int]) -> None:
        step = (kind, tuple(lits))
        self.steps.append(step)
        if self.stream is not None:
            self.stream.write(format_step(step) + "\n")

    def add(self, lits: Iterable[int]) -> None:
        """Record a derived (RUP-checkable) clause addition."""
        self._record(ADD, lits)

    def delete(self, lits: Iterable[int]) -> None:
        """Record a learned-clause database deletion."""
        self._record(DELETE, lits)

    def extend(self, lits: Iterable[int]) -> None:
        """Record an input clause added to a live solver (e.g. blocking)."""
        self._record(EXTEND, lits)

    @property
    def empty_derived(self) -> bool:
        """Whether the trace derives the empty clause (claims UNSAT)."""
        return any(kind == ADD and not lits for kind, lits in self.steps)

    def digest(self) -> str:
        """The trace's sha256 content address."""
        return trace_digest(self.steps)

    def __len__(self) -> int:
        return len(self.steps)
