"""An independent RUP/DRAT checker and witness checker.

This module is the trust anchor of the certificate subsystem: it shares
*no* code with the solver's search loop.  No watched literals, no VSIDS,
no conflict analysis — just a plain unit propagator over occurrence lists
and a trail.  A bug in the solver therefore cannot certify itself; the
checker re-derives every claimed consequence from scratch.

``check_unsat_proof`` validates a trace produced by
:class:`repro.cert.drat.DratLogger` against the original CNF:

* every derived addition (``"a"``) must be RUP — assuming its negation
  and unit-propagating over the current formula must yield a conflict;
* extensions (``"e"``, e.g. enumeration blocking clauses) are added
  unchecked: they are new assumptions, and the certified claim becomes
  "original CNF plus extensions is unsatisfiable";
* deletions (``"d"``) shrink the working formula (performance only; a
  deletion that would remove a clause currently acting as a unit is
  skipped, mirroring drat-trim, so root implications stay justified);
* the trace must derive the empty clause, otherwise it is rejected as
  truncated.

``check_witness`` validates a SAT claim: a total assignment must satisfy
every clause of the original CNF.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

from .drat import ADD, DELETE, EXTEND, Step


class CheckFailure(Exception):
    """A certificate failed independent validation."""


class _Propagator:
    """Minimal unit propagation over occurrence lists with a trail.

    Root-level consequences are permanent; RUP probes push assumptions on
    the trail and roll back to the root mark afterwards.
    """

    def __init__(self, num_vars: int):
        self.num_vars = num_vars
        # assignment[var]: None / True / False
        self.assign: List[object] = [None] * (num_vars + 1)
        self.trail: List[int] = []
        self.qhead = 0
        self.clauses: Dict[int, Tuple[int, ...]] = {}
        self.occurs: Dict[int, set] = {}
        self.next_id = 0
        self.contradiction = False

    # -- assignment primitives ----------------------------------------

    def value(self, lit: int):
        value = self.assign[abs(lit)]
        if value is None:
            return None
        return value if lit > 0 else not value

    def _push(self, lit: int) -> bool:
        """Assign ``lit`` true; False if it contradicts the assignment."""
        current = self.value(lit)
        if current is not None:
            return current
        self.assign[abs(lit)] = lit > 0
        self.trail.append(lit)
        return True

    def _undo_to(self, mark: int) -> None:
        for lit in self.trail[mark:]:
            self.assign[abs(lit)] = None
        del self.trail[mark:]
        self.qhead = mark

    # -- clause store -------------------------------------------------

    def _validate(self, lits: Sequence[int]) -> None:
        for lit in lits:
            if lit == 0 or abs(lit) > self.num_vars:
                raise CheckFailure(
                    f"literal {lit} references an unknown variable "
                    f"(formula has {self.num_vars})"
                )

    def add_clause(self, lits: Sequence[int]) -> None:
        """Permanently add a clause and propagate its root consequences."""
        self._validate(lits)
        cid = self.next_id
        self.next_id += 1
        clause = tuple(lits)
        self.clauses[cid] = clause
        for lit in set(clause):
            self.occurs.setdefault(lit, set()).add(cid)
        if self.contradiction:
            return
        unassigned = [lit for lit in clause if self.value(lit) is None]
        if any(self.value(lit) is True for lit in clause):
            return
        if not unassigned:
            self.contradiction = True
            return
        if len(unassigned) == 1:
            if not self._push(unassigned[0]) or not self.propagate():
                self.contradiction = True

    def delete_clause(self, lits: Sequence[int]) -> None:
        """Remove one clause with these literals (best effort).

        Skips the deletion when the clause is currently unit or falsified
        under the root assignment (it may be justifying a root literal),
        or when no matching clause exists — both choices only make the
        working formula stronger, which never breaks soundness: every
        retained clause was itself checked (or given) as an input/lemma.
        """
        if not lits:
            return
        key = tuple(sorted(lits))
        for cid in tuple(self.occurs.get(lits[0], ())):
            clause = self.clauses.get(cid)
            if clause is None or tuple(sorted(clause)) != key:
                continue
            non_false = [lit for lit in clause if self.value(lit) is not False]
            if len(non_false) <= 1 and not any(
                self.value(lit) is True for lit in clause
            ):
                return  # acting as a unit/conflict at root; keep it
            del self.clauses[cid]
            for lit in set(clause):
                self.occurs[lit].discard(cid)
            return

    # -- propagation --------------------------------------------------

    def propagate(self) -> bool:
        """Unit-propagate to fixpoint; False on conflict."""
        while self.qhead < len(self.trail):
            lit = self.trail[self.qhead]
            self.qhead += 1
            for cid in tuple(self.occurs.get(-lit, ())):
                clause = self.clauses.get(cid)
                if clause is None:
                    continue
                unassigned = None
                satisfied = False
                for other in clause:
                    value = self.value(other)
                    if value is True:
                        satisfied = True
                        break
                    if value is None:
                        if unassigned is not None:
                            unassigned = 0  # at least two open literals
                            break
                        unassigned = other
                if satisfied or unassigned == 0:
                    continue
                if unassigned is None:
                    return False  # conflict
                self._push(unassigned)
        return True

    def rup(self, lits: Sequence[int]) -> bool:
        """Whether the clause is a reverse-unit-propagation consequence."""
        if self.contradiction:
            return True  # anything follows from a root conflict
        self._validate(lits)
        mark = len(self.trail)
        conflict = False
        for lit in lits:
            if not self._push(-lit):
                conflict = True  # clause contains a root-true literal
                break
        if not conflict:
            conflict = not self.propagate()
        self._undo_to(mark)
        return conflict


def check_unsat_proof(
    num_vars: int,
    clauses: Iterable[Sequence[int]],
    steps: Iterable[Step],
) -> int:
    """Validate an UNSAT trace against the original CNF.

    Returns the number of RUP-verified additions.  Raises
    :class:`CheckFailure` if any derived clause fails its RUP check, a
    step is malformed, or the trace never derives the empty clause.
    """
    propagator = _Propagator(num_vars)
    for clause in clauses:
        propagator.add_clause(clause)
    if not propagator.propagate():
        propagator.contradiction = True
    verified = 0
    for index, (kind, lits) in enumerate(steps):
        if kind == ADD:
            if not propagator.rup(lits):
                raise CheckFailure(
                    f"step {index}: clause {list(lits)} is not a "
                    "unit-propagation consequence of the formula"
                )
            verified += 1
            if not lits:
                return verified  # empty clause verified: UNSAT certified
            propagator.add_clause(lits)
        elif kind == EXTEND:
            propagator.add_clause(lits)
        elif kind == DELETE:
            propagator.delete_clause(lits)
        else:
            raise CheckFailure(f"step {index}: unknown step kind {kind!r}")
    raise CheckFailure(
        "trace ended without deriving the empty clause (truncated or "
        "non-refutation trace)"
    )


def check_witness(
    clauses: Iterable[Sequence[int]],
    assignment: Mapping[int, bool],
) -> int:
    """Validate a SAT claim: the assignment must satisfy every clause.

    Returns the number of clauses checked; raises :class:`CheckFailure`
    on the first clause left unsatisfied (an unassigned variable never
    satisfies a literal — the witness must be total on every clause it
    touches).
    """
    checked = 0
    for index, clause in enumerate(clauses):
        satisfied = False
        for lit in clause:
            value = assignment.get(abs(lit))
            if value is not None and value == (lit > 0):
                satisfied = True
                break
        if not satisfied:
            raise CheckFailure(
                f"witness violates clause {index}: {list(clause)}"
            )
        checked += 1
    return checked
