"""Verdict certificates: proof logging plus an independent checker.

The paper's trust story (§5.3) is that empirical model-finding results are
only believable once machine-checked.  This package closes the per-verdict
gap: the CDCL backend logs a DRAT-style proof trace while it solves
(:mod:`repro.cert.drat`), a small independent checker re-validates the
trace by unit propagation alone (:mod:`repro.cert.checker`), and
:mod:`repro.cert.verdict` packages the outcome as a
:class:`~repro.cert.verdict.Certificate` attached to every litmus result:

* a FORBIDDEN verdict ships an UNSAT trace accepted by the RUP checker;
* an ALLOWED verdict ships a witness assignment re-evaluated against the
  original CNF and the kodkod translation bounds.

The checker shares no code with the solver's search loop — no watches, no
VSIDS, no conflict analysis — so a bug in the 600-line solver cannot
silently certify itself.
"""

from .checker import CheckFailure, check_unsat_proof, check_witness
from .drat import DratLogger, read_drat, write_drat
from .verdict import (
    Certificate,
    certify_enumeration,
    certify_symbolic,
    skipped_certificate,
)

__all__ = [
    "Certificate",
    "CheckFailure",
    "DratLogger",
    "certify_enumeration",
    "certify_symbolic",
    "check_unsat_proof",
    "check_witness",
    "read_drat",
    "skipped_certificate",
    "write_drat",
]
