"""The scope-extended RC11 ("scoped C++") memory model (paper §4.1)."""

from .events import CEvent, CKind, MemOrder, c_init_write, c_is_init
from .model import (
    Rc11Report,
    build_env,
    check_execution,
    data_races,
    inclusion,
    is_race_free,
)
from .program import (
    CElaboration,
    CFence,
    CLoad,
    COp,
    CProgram,
    CProgramBuilder,
    CRmw,
    CStore,
    CThread,
    c_elaborate,
    read_node,
    write_node,
)
from .spec import AXIOMS, AXIOMS_WITH_THIN_AIR, DERIVED

__all__ = [
    "AXIOMS",
    "AXIOMS_WITH_THIN_AIR",
    "CElaboration",
    "CEvent",
    "CFence",
    "CKind",
    "CLoad",
    "COp",
    "CProgram",
    "CProgramBuilder",
    "CRmw",
    "CStore",
    "CThread",
    "DERIVED",
    "MemOrder",
    "Rc11Report",
    "build_env",
    "c_elaborate",
    "c_init_write",
    "c_is_init",
    "check_execution",
    "data_races",
    "inclusion",
    "is_race_free",
    "read_node",
    "write_node",
]
