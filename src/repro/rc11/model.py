"""Checking candidate scoped-RC11 executions, plus the race judgment.

The soundness theorem (paper §5.2) is stated for *race-free* source
programs, so alongside the Figure 10c axioms this module implements the
scoped data-race definition: conflicting accesses from different threads
must be ordered by happens-before, and if synchronization-free they race;
additionally (the scoped twist of Wickerson et al.) two atomics whose
scopes are not mutually inclusive cannot order each other, so an
unordered non-inclusive conflicting pair races even when both are atomic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core.execution import Execution, same_location
from ..core.scopes import mutually_inclusive
from ..lang import Env, bit_env, eval_expr, eval_formula
from ..relation import Relation
from . import spec
from .events import CEvent, CKind, MemOrder, c_is_init


def inclusion(events: Tuple[CEvent, ...]) -> Relation:
    """The ``incl`` relation: distinct pairs of scoped (atomic) events whose
    scopes mutually include each other's threads (§4.1)."""
    pairs: List[Tuple[CEvent, CEvent]] = []
    for a in events:
        for b in events:
            if a is b or a.scope is None or b.scope is None:
                continue
            if mutually_inclusive(a.thread, a.scope, b.thread, b.scope):
                pairs.append((a, b))
    return Relation(pairs)


def build_env(execution: Execution, kernel: str = "set") -> Env:
    """Environment for the scoped RC11 spec.

    ``execution.relations`` must provide ``sb``, ``rf`` and ``mo``; the
    event-class sets, ``sloc``, ``incl`` and the single-event ``rmw``
    identity are derived here.  ``kernel`` selects the relation
    representation (``"set"`` or ``"bit"``); verdicts are identical.
    """
    events = execution.events
    bindings: Dict[str, Relation] = {
        "sb": execution.relation("sb"),
        "sloc": same_location(events),
        "rf": execution.relation("rf"),
        "mo": execution.relation("mo"),
        "incl": inclusion(events),
        "rmw": Relation(
            (e, e) for e in events if e.kind is CKind.RMW
        ),
        "R": Relation.set_of(e for e in events if e.is_read),
        "W": Relation.set_of(e for e in events if e.is_write),
        "F": Relation.set_of(e for e in events if e.is_fence),
        "E_rel": Relation.set_of(e for e in events if e.mo.at_least_rel),
        "E_acq": Relation.set_of(e for e in events if e.mo.at_least_acq),
        "W_rlx": Relation.set_of(
            e for e in events if e.is_write and e.mo.at_least_rlx
        ),
        "R_rlx": Relation.set_of(
            e for e in events if e.is_read and e.mo.at_least_rlx
        ),
        "E_sc": Relation.set_of(
            e for e in events if e.is_memory and e.mo is MemOrder.SC
        ),
        "F_sc": Relation.set_of(
            e for e in events if e.is_fence and e.mo is MemOrder.SC
        ),
    }
    if kernel == "bit":
        return bit_env(events, bindings, sets=spec.BASE_SETS)
    if kernel != "set":
        raise ValueError(f"unknown relation kernel {kernel!r}")
    return Env(universe=Relation.set_of(events), bindings=bindings)


@dataclass(frozen=True)
class Rc11Report:
    """Verdict of the scoped RC11 axioms on one candidate execution."""

    axioms: Dict[str, bool]
    execution: Execution

    @property
    def consistent(self) -> bool:
        """Whether every axiom holds."""
        return all(self.axioms.values())

    @property
    def failed(self) -> Tuple[str, ...]:
        """Names of the axioms that failed."""
        return tuple(name for name, ok in self.axioms.items() if not ok)


def check_execution(
    execution: Execution,
    with_thin_air: bool = False,
    env: Optional[Env] = None,
) -> Rc11Report:
    """Evaluate the Figure 10c axioms on a candidate execution.

    ``with_thin_air`` re-enables the RC11 No-Thin-Air axiom the paper drops
    (§4.1), for ablation experiments.
    """
    # the self-built environment runs on the bitset kernel: this is the
    # enumeration hot path (verdicts are kernel-independent)
    env = env or build_env(execution, kernel="bit")
    axioms = spec.AXIOMS_WITH_THIN_AIR if with_thin_air else spec.AXIOMS
    results = {name: eval_formula(axiom, env) for name, axiom in axioms.items()}
    return Rc11Report(axioms=results, execution=execution)


def data_races(execution: Execution, env: Optional[Env] = None) -> Relation:
    """All data races, as a symmetric relation over events.

    A race is a conflicting pair (same location, at least one write) from
    different threads, unordered by happens-before, where additionally at
    least one side is non-atomic or the pair is not scope-inclusive.
    """
    env = env or build_env(execution, kernel="bit")
    hb = eval_expr(spec.DERIVED["hb"], env)
    incl = env.lookup("incl")
    pairs: List[Tuple[CEvent, CEvent]] = []
    events = [e for e in execution.events if e.is_memory and not c_is_init(e)]
    for a in events:
        for b in events:
            if a.eid >= b.eid or a.thread == b.thread:
                continue
            if a.loc != b.loc or not (a.is_write or b.is_write):
                continue
            if (a, b) in hb or (b, a) in hb:
                continue
            if a.mo.is_atomic and b.mo.is_atomic and (a, b) in incl:
                continue
            pairs.append((a, b))
            pairs.append((b, a))
    return Relation(pairs)


def is_race_free(execution: Execution, env: Optional[Env] = None) -> bool:
    """Whether the execution contains no data race."""
    return data_races(execution, env=env).is_empty()
