"""The scope-extended RC11 memory model (paper §4.1, Figure 10).

This is the paper's "scoped C++": the Repaired C11 model of Lahav et al.
with two changes (§4.1):

1. **Scopes.**  The ``incl`` relation (mutually inclusive scopes) gates
   synchronization: ``sw`` communicates only over ``incl ∩ rf`` edges,
   ``hb`` only absorbs ``incl ∩ sw``, and the SC axiom constrains only
   ``incl ∩ psc``.
2. **No-Thin-Air is dropped** — its blanket load-to-store ordering ban
   contradicts current GPU behaviour.  (It remains available behind a flag
   for experimentation.)

Base relations expected in the environment: ``sb`` (sequenced-before),
``sloc``, ``rf``, ``mo`` (per-location total modification order), ``incl``,
``rmw`` (the identity on single-event RMWs).  Sets: ``R``, ``W``, ``F``,
plus the order-qualified sets listed below.

Note on ``mo``: Figure 10 glosses it as "total order over atomic writes to
each address"; following the RC11 development itself we totalise over *all*
writes per address — for race-free programs the difference is unobservable,
and it keeps non-atomic same-thread write-write coherence inside the model.
"""

from __future__ import annotations

from typing import Dict

from ..lang.ast import (
    Acyclic,
    Expr,
    Formula,
    Iden,
    Irreflexive,
    NoF,
    bracket,
    rel,
    seq,
    set_,
)

sb = rel("sb")
sloc = rel("sloc")
rf = rel("rf")
mo = rel("mo")
incl = rel("incl")
rmw = rel("rmw")

R = set_("R")
W = set_("W")
F = set_("F")
E_rel = set_("E_rel")    # events with memory order ⊒ REL
E_acq = set_("E_acq")    # events with memory order ⊒ ACQ
W_rlx = set_("W_rlx")    # writes with memory order ⊒ RLX (atomic writes)
R_rlx = set_("R_rlx")    # reads with memory order ⊒ RLX (atomic reads)
E_sc = set_("E_sc")      # SC events (memory accesses)
F_sc = set_("F_sc")      # SC fences

BASE_RELATIONS = ("sb", "sloc", "rf", "mo", "incl", "rmw")
BASE_SETS = ("R", "W", "F", "E_rel", "E_acq", "W_rlx", "R_rlx", "E_sc", "F_sc")

# ---------------------------------------------------------------------------
# derived relations (Figure 10b)
# ---------------------------------------------------------------------------

#: sequenced-before restricted to / excluding same-location pairs.
sb_loc: Expr = sb & sloc
sb_nloc: Expr = sb - sb_loc

#: reads-before: rb := rf⁻¹ ; mo (minus identity — an RMW reads before the
#: writes mo-after it, but not before itself).
rb: Expr = ((~rf) @ mo) - Iden()

#: extended communication order.
eco: Expr = (rf | mo | rb).plus()

#: release sequence: a write, optionally followed by a same-location atomic
#: write of the same thread, extended through scope-inclusive RMW chains.
rs: Expr = seq(bracket(W), sb_loc.opt(), bracket(W_rlx), ((incl & rf) @ rmw).star())

#: synchronizes-with: a ⊒REL event (possibly a fence before the releasing
#: write), a release sequence, a scope-inclusive rf into a ⊒RLX read
#: (possibly followed by a fence), ending at a ⊒ACQ event.
sw: Expr = seq(
    bracket(E_rel),
    (bracket(F) @ sb).opt(),
    rs,
    incl & rf,
    bracket(R_rlx),
    (sb @ bracket(F)).opt(),
    bracket(E_acq),
)

#: happens-before (scoped: only inclusive sw edges synchronize).
hb: Expr = (sb | (incl & sw)).plus()

hb_loc: Expr = hb & sloc

#: SC base order ingredients (Figure 10b).
scb: Expr = sb | seq(sb_nloc, hb, sb_nloc) | hb_loc | mo | rb

psc_base: Expr = seq(
    bracket(E_sc) | (bracket(F_sc) @ hb.opt()),
    scb,
    bracket(E_sc) | (hb.opt() @ bracket(F_sc)),
)

psc_f: Expr = seq(bracket(F_sc), hb | seq(hb, eco, hb), bracket(F_sc))

psc: Expr = psc_base | psc_f

DERIVED: Dict[str, Expr] = {
    "sb_loc": sb_loc,
    "sb_nloc": sb_nloc,
    "rb": rb,
    "eco": eco,
    "rs": rs,
    "sw": sw,
    "hb": hb,
    "scb": scb,
    "psc_base": psc_base,
    "psc_f": psc_f,
    "psc": psc,
}

# ---------------------------------------------------------------------------
# axioms (Figure 10c)
# ---------------------------------------------------------------------------

coherence: Formula = Irreflexive(hb @ eco.opt())

atomicity: Formula = NoF(rmw & (rb @ mo))

sc_axiom: Formula = Acyclic(incl & psc)

#: Excluded by default (§4.1); kept for ablation experiments.
no_thin_air: Formula = Acyclic(sb | rf)

AXIOMS: Dict[str, Formula] = {
    "Coherence": coherence,
    "Atomicity": atomicity,
    "SC": sc_axiom,
}

AXIOMS_WITH_THIN_AIR: Dict[str, Formula] = {
    **AXIOMS,
    "No-Thin-Air": no_thin_air,
}
