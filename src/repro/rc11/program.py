"""Scoped C++ programs and their elaboration.

Source programs are built from four operations — atomic/non-atomic loads
and stores, RMWs, and fences — mirroring the primitives of Figure 10a.
Elaboration lowers them to :class:`~repro.rc11.events.CEvent` sequences and
prepares the *value-node* graph used by the shared dataflow solver
(:mod:`repro.search.values`): every event gets a read node and/or a write
node (an RMW has both), identified as ``2*eid`` / ``2*eid + 1``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from ..core.scopes import Scope, SystemShape, ThreadId
from ..ptx.isa import AtomOp
from ..ptx.program import ReadRef, WriteRecipe
from ..relation import Relation
from .events import CEvent, CKind, MemOrder

Operand = Union[int, str]


class COp:
    """Base class for scoped C++ operations."""


@dataclass(frozen=True)
class CLoad(COp):
    """``dst = atomic_load(loc, mo, scope)`` (or a plain load when NA)."""

    dst: str
    loc: str
    mo: MemOrder = MemOrder.NA
    scope: Optional[Scope] = None


@dataclass(frozen=True)
class CStore(COp):
    """``atomic_store(loc, src, mo, scope)`` (or a plain store when NA)."""

    loc: str
    src: Operand
    mo: MemOrder = MemOrder.NA
    scope: Optional[Scope] = None


@dataclass(frozen=True)
class CRmw(COp):
    """``dst = atomic_rmw<op>(loc, operands, mo, scope)``."""

    dst: str
    loc: str
    op: AtomOp
    operands: Tuple[Operand, ...]
    mo: MemOrder = MemOrder.RLX
    scope: Optional[Scope] = None


@dataclass(frozen=True)
class CFence(COp):
    """``atomic_thread_fence(mo, scope)``."""

    mo: MemOrder = MemOrder.SC
    scope: Scope = Scope.SYS


@dataclass(frozen=True)
class CThread:
    """One source thread's straight-line operation sequence."""

    tid: ThreadId
    ops: Tuple[COp, ...]


@dataclass(frozen=True)
class CProgram:
    """A multi-threaded scoped C++ program."""

    name: str
    threads: Tuple[CThread, ...]
    shape: SystemShape = field(default_factory=SystemShape)

    def __post_init__(self):
        tids = [t.tid for t in self.threads]
        if len(set(tids)) != len(tids):
            raise ValueError(f"duplicate thread ids in program {self.name!r}")

    @property
    def locations(self) -> Tuple[str, ...]:
        """All memory locations touched by the program, sorted."""
        locs = {
            op.loc
            for thread in self.threads
            for op in thread.ops
            if getattr(op, "loc", None) is not None
        }
        return tuple(sorted(locs))


class CProgramBuilder:
    """Fluent construction of scoped C++ programs."""

    def __init__(self, name: str, shape: Optional[SystemShape] = None):
        self._name = name
        self._shape = shape or SystemShape()
        self._threads: List[Tuple[ThreadId, List[COp]]] = []

    def thread(self, tid: ThreadId) -> "CProgramBuilder":
        """Start a new thread."""
        self._threads.append((tid, []))
        return self

    def _append(self, op: COp) -> "CProgramBuilder":
        if not self._threads:
            raise ValueError("call .thread(tid) before adding operations")
        self._threads[-1][1].append(op)
        return self

    def load(self, dst, loc, mo=MemOrder.NA, scope=None) -> "CProgramBuilder":
        """Append a load."""
        return self._append(CLoad(dst=dst, loc=loc, mo=mo, scope=scope))

    def store(self, loc, src, mo=MemOrder.NA, scope=None) -> "CProgramBuilder":
        """Append a store."""
        return self._append(CStore(loc=loc, src=src, mo=mo, scope=scope))

    def rmw(self, dst, loc, op, operands, mo=MemOrder.RLX, scope=None) -> "CProgramBuilder":
        """Append an RMW."""
        operands = tuple(operands) if isinstance(operands, (tuple, list)) else (operands,)
        return self._append(
            CRmw(dst=dst, loc=loc, op=op, operands=operands, mo=mo, scope=scope)
        )

    def fence(self, mo=MemOrder.SC, scope=Scope.SYS) -> "CProgramBuilder":
        """Append a fence."""
        return self._append(CFence(mo=mo, scope=scope))

    def build(self) -> CProgram:
        """Finish construction."""
        return CProgram(
            name=self._name,
            threads=tuple(
                CThread(tid=tid, ops=tuple(ops)) for tid, ops in self._threads
            ),
            shape=self._shape,
        )


def normalize_sc(program: CProgram) -> CProgram:
    """Lahav-style SC normalisation (used by the paper's Theorem 3 proof).

    Every ``memory_order_seq_cst`` *access* is rewritten to the equivalent
    acquire/release access preceded by a ``seq_cst`` fence; SC fences are
    untouched.  Lahav et al. prove the transformation preserves RC11
    consistency, and it commutes with the Figure 11 mapping (both sides
    compile to ``fence.sc`` followed by the acquire/release instruction),
    which is why the paper can reason about psc purely between ``F_SC``
    events.
    """
    def rewrite(op: COp):
        if isinstance(op, CLoad) and op.mo is MemOrder.SC:
            return [
                CFence(mo=MemOrder.SC, scope=op.scope),
                CLoad(dst=op.dst, loc=op.loc, mo=MemOrder.ACQ, scope=op.scope),
            ]
        if isinstance(op, CStore) and op.mo is MemOrder.SC:
            return [
                CFence(mo=MemOrder.SC, scope=op.scope),
                CStore(loc=op.loc, src=op.src, mo=MemOrder.REL, scope=op.scope),
            ]
        if isinstance(op, CRmw) and op.mo is MemOrder.SC:
            return [
                CFence(mo=MemOrder.SC, scope=op.scope),
                CRmw(
                    dst=op.dst, loc=op.loc, op=op.op, operands=op.operands,
                    mo=MemOrder.ACQREL, scope=op.scope,
                ),
            ]
        return [op]

    return CProgram(
        name=f"{program.name}+scnorm",
        threads=tuple(
            CThread(
                tid=thread.tid,
                ops=tuple(new for op in thread.ops for new in rewrite(op)),
            )
            for thread in program.threads
        ),
        shape=program.shape,
    )


def read_node(event: CEvent) -> int:
    """Value-node id for the read half of an event."""
    return 2 * event.eid


def write_node(event: CEvent) -> int:
    """Value-node id for the write half of an event."""
    return 2 * event.eid + 1


@dataclass(frozen=True)
class CElaboration:
    """The result of lowering a scoped C++ program to events.

    Exposes ``write_recipe`` keyed by *write node* so the shared value
    solver (:func:`repro.search.values.valuations`) can run unchanged.
    """

    program: CProgram
    events: Tuple[CEvent, ...]
    by_thread: Tuple[Tuple[CEvent, ...], ...]
    read_dst: Dict[int, str]              # read node -> destination register
    write_recipe: Dict[int, WriteRecipe]  # write node -> value recipe

    def event(self, eid: int) -> CEvent:
        """Look up an event by id."""
        return self.events[eid]


def c_elaborate(program: CProgram) -> CElaboration:
    """Lower a scoped C++ program to events plus value-node recipes."""
    events: List[CEvent] = []
    by_thread: List[Tuple[CEvent, ...]] = []
    read_dst: Dict[int, str] = {}
    write_recipe: Dict[int, WriteRecipe] = {}
    instr_counter = 0

    for thread in program.threads:
        thread_events: List[CEvent] = []
        defined_by: Dict[str, CEvent] = {}

        def new_event(**kw) -> CEvent:
            event = CEvent(eid=len(events), **kw)
            events.append(event)
            thread_events.append(event)
            return event

        def resolve(operand: Operand):
            if isinstance(operand, int):
                return operand
            source = defined_by.get(operand)
            if source is None:
                raise ValueError(
                    f"register {operand!r} used before definition in "
                    f"thread {thread.tid}"
                )
            return ReadRef(read_node(source))

        for op in thread.ops:
            instr_counter += 1
            if isinstance(op, CLoad):
                event = new_event(
                    thread=thread.tid, kind=CKind.READ, mo=op.mo,
                    scope=op.scope, loc=op.loc, instr=instr_counter,
                )
                read_dst[read_node(event)] = op.dst
                defined_by[op.dst] = event
            elif isinstance(op, CStore):
                event = new_event(
                    thread=thread.tid, kind=CKind.WRITE, mo=op.mo,
                    scope=op.scope, loc=op.loc, instr=instr_counter,
                )
                write_recipe[write_node(event)] = WriteRecipe(operand=resolve(op.src))
            elif isinstance(op, CRmw):
                event = new_event(
                    thread=thread.tid, kind=CKind.RMW, mo=op.mo,
                    scope=op.scope, loc=op.loc, instr=instr_counter,
                )
                write_recipe[write_node(event)] = WriteRecipe(
                    rmw_op=op.op,
                    rmw_operands=tuple(resolve(o) for o in op.operands),
                    rmw_read_eid=read_node(event),
                )
                read_dst[read_node(event)] = op.dst
                defined_by[op.dst] = event
            elif isinstance(op, CFence):
                new_event(
                    thread=thread.tid, kind=CKind.FENCE, mo=op.mo,
                    scope=op.scope, instr=instr_counter,
                )
            else:
                raise TypeError(f"unknown operation: {op!r}")
        by_thread.append(tuple(thread_events))

    return CElaboration(
        program=program,
        events=tuple(events),
        by_thread=tuple(by_thread),
        read_dst=read_dst,
        write_recipe=write_recipe,
    )
