"""Scoped C++ (RC11-based) events — paper §4.1, Figure 10a.

The source model's events are C/C++-level: atomic and non-atomic reads and
writes, fences, and *single-event* RMWs (an RMW belongs to both ``R`` and
``W``; contrast PTX, which splits atomics in two).  Each atomic operation
additionally carries a scope, the extension Wickerson et al. introduced and
the paper adopts: synchronization only "counts" between operations with
mutually inclusive scopes (the ``incl`` relation).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from ..core.scopes import Scope, ThreadId


class MemOrder(enum.Enum):
    """C/C++ ``memory_order`` arguments (Figure 10a).

    The set is ordered NA < RLX < {ACQ, REL} < ACQREL < SC, with ACQ and REL
    incomparable.
    """

    NA = "na"
    RLX = "rlx"
    ACQ = "acq"
    REL = "rel"
    ACQREL = "acqrel"
    SC = "sc"

    def __repr__(self) -> str:
        return self.value

    @property
    def is_atomic(self) -> bool:
        """Whether the order marks an atomic (non-NA) operation."""
        return self is not MemOrder.NA

    @property
    def at_least_rlx(self) -> bool:
        """``mo ⊒ RLX``."""
        return self is not MemOrder.NA

    @property
    def at_least_acq(self) -> bool:
        """``mo ⊒ ACQ``."""
        return self in (MemOrder.ACQ, MemOrder.ACQREL, MemOrder.SC)

    @property
    def at_least_rel(self) -> bool:
        """``mo ⊒ REL``."""
        return self in (MemOrder.REL, MemOrder.ACQREL, MemOrder.SC)


class CKind(enum.Enum):
    """The flavour of a scoped C++ event."""

    READ = "R"
    WRITE = "W"
    RMW = "U"  # update: both a read and a write
    FENCE = "F"

    def __repr__(self) -> str:
        return self.value


_LEGAL = {
    CKind.READ: {MemOrder.NA, MemOrder.RLX, MemOrder.ACQ, MemOrder.SC},
    CKind.WRITE: {MemOrder.NA, MemOrder.RLX, MemOrder.REL, MemOrder.SC},
    CKind.RMW: {MemOrder.RLX, MemOrder.ACQ, MemOrder.REL, MemOrder.ACQREL, MemOrder.SC},
    CKind.FENCE: {MemOrder.ACQ, MemOrder.REL, MemOrder.ACQREL, MemOrder.SC},
}


@dataclass(frozen=True)
class CEvent:
    """A scoped C++ execution event."""

    eid: int
    thread: ThreadId
    kind: CKind
    mo: MemOrder
    scope: Optional[Scope] = None
    loc: Optional[str] = None
    instr: int = -1

    def __post_init__(self):
        if self.mo not in _LEGAL[self.kind]:
            raise ValueError(f"{self.kind} cannot carry memory_order {self.mo}")
        if self.kind is CKind.FENCE:
            if self.loc is not None:
                raise ValueError("fences have no location")
        elif self.loc is None:
            raise ValueError("memory events need a location")
        if self.mo is MemOrder.NA and self.scope is not None:
            raise ValueError("non-atomic operations carry no scope")
        if self.mo is not MemOrder.NA and self.scope is None:
            raise ValueError("atomic operations need a scope")

    def __hash__(self) -> int:
        # The relation kernels hash events millions of times per search;
        # the fields are frozen, so compute once and pin the result.
        h = self.__dict__.get("_hash")
        if h is None:
            h = hash((
                self.eid, self.thread, self.kind, self.mo, self.scope,
                self.loc, self.instr,
            ))
            object.__setattr__(self, "_hash", h)
        return h

    def __getstate__(self):
        # str hashes are salted per process: never ship a cached hash
        # across a pickle boundary.
        state = dict(self.__dict__)
        state.pop("_hash", None)
        return state

    @property
    def is_read(self) -> bool:
        """Whether the event reads (reads and RMWs)."""
        return self.kind in (CKind.READ, CKind.RMW)

    @property
    def is_write(self) -> bool:
        """Whether the event writes (writes and RMWs)."""
        return self.kind in (CKind.WRITE, CKind.RMW)

    @property
    def is_fence(self) -> bool:
        """Whether the event is a fence."""
        return self.kind is CKind.FENCE

    @property
    def is_memory(self) -> bool:
        """Whether the event accesses memory."""
        return self.kind is not CKind.FENCE

    def __repr__(self) -> str:
        bits = [f"c{self.eid}", repr(self.thread), self.kind.value, self.mo.value]
        if self.scope is not None:
            bits.append(self.scope.value)
        if self.loc is not None:
            bits.append(f"[{self.loc}]")
        return "<" + " ".join(bits) + ">"


_INIT_THREAD = ThreadId(gpu=None, cta=None, thread=-2)


def c_init_write(eid: int, loc: str) -> CEvent:
    """The initial zero write to ``loc`` at the source level.

    System-scoped and relaxed, so it is ``incl`` with every atomic and
    happens-before everything via the usual init convention (the search
    pins it at the bottom of ``mo`` and treats it as hb-before all events).
    """
    return CEvent(
        eid=eid,
        thread=_INIT_THREAD,
        kind=CKind.WRITE,
        mo=MemOrder.RLX,
        scope=Scope.SYS,
        loc=loc,
        instr=-1,
    )


def c_is_init(event: CEvent) -> bool:
    """Whether an event is an initial write."""
    return event.thread == _INIT_THREAD
