"""Wall-clock deadlines for the decision engines.

Two cooperating mechanisms enforce a per-test ``timeout``:

* **Preemptive** — on the main thread of a process ``SIGALRM`` /
  ``setitimer`` interrupts a pathological enumeration mid-expression,
  even inside code that never polls.
* **Cooperative** — everywhere (including worker threads and platforms
  without ``SIGALRM``) the :func:`deadline` context manager pushes a
  monotonic-clock deadline onto a thread-local stack, and the engines'
  long-running loops call :func:`check_deadline` each iteration.

Before the cooperative guard existed, ``timeout=`` off the main thread
was a silent no-op: the old guard simply skipped arming the timer and
ran the block unbounded.  Now the bound always holds wherever an engine
loop polls; code paths that cannot be interrupted preemptively are
flagged once via a :class:`DeadlineNotPreemptive` warning so callers can
tell "enforced cooperatively" from "enforced by signal".

This module lives in :mod:`repro.core` (not the litmus runner) so the
search engines can poll it without importing the runner — the runner
imports the search layer, and the reverse import would be circular.
"""

from __future__ import annotations

import signal
import threading
import time
import warnings
from contextlib import contextmanager
from typing import Iterator, List, Optional


class TimeoutExceeded(Exception):
    """Internal signal: the per-test wall-clock deadline fired."""


class DeadlineNotPreemptive(UserWarning):
    """A deadline could not arm ``SIGALRM`` (off the main thread, or the
    platform lacks it): enforcement is cooperative-only, relying on the
    engines' loop polls rather than a hard interrupt."""


class _DeadlineState(threading.local):
    def __init__(self) -> None:
        self.stack: List[float] = []


_state = _DeadlineState()

#: process-wide: warn once (not per test) when falling back to
#: cooperative-only enforcement.
_warned_not_preemptive = False


def active_deadline() -> Optional[float]:
    """The innermost deadline (a ``time.monotonic`` instant) on this
    thread, or ``None`` when no deadline is active."""
    stack = _state.stack
    return min(stack) if stack else None


def check_deadline() -> None:
    """Raise :class:`TimeoutExceeded` if this thread's deadline passed.

    The engines call this from their enumeration loops; it is a no-op
    (one thread-local read) when no deadline is active, so the poll is
    safe on every hot path.
    """
    stack = _state.stack
    if stack and time.monotonic() >= min(stack):
        raise TimeoutExceeded()


def _can_preempt() -> bool:
    return (
        hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )


@contextmanager
def deadline(seconds: Optional[float]) -> Iterator[bool]:
    """Bound the block to ``seconds`` of wall-clock time.

    Yields ``True`` when the bound is preemptive (``SIGALRM`` armed),
    ``False`` when it is cooperative-only — the block is still bounded
    through :func:`check_deadline` polls, and a one-shot
    :class:`DeadlineNotPreemptive` warning records the downgrade.
    ``seconds=None`` means unbounded.
    """
    if seconds is None:
        yield True
        return

    preemptive = _can_preempt()
    if not preemptive:
        global _warned_not_preemptive
        if not _warned_not_preemptive:
            _warned_not_preemptive = True
            warnings.warn(
                "deadline(): SIGALRM unavailable here (worker thread or "
                "platform without it); the timeout is enforced "
                "cooperatively by engine loop polls only",
                DeadlineNotPreemptive,
                stacklevel=3,
            )

    _state.stack.append(time.monotonic() + seconds)
    previous = None
    try:
        # arm *inside* the try: a very short timer can fire between
        # setitimer() and the next statement, and the raise must not
        # leave the timer armed or the stack entry pushed
        if preemptive:
            def _fire(signum, frame):
                raise TimeoutExceeded()

            previous = signal.signal(signal.SIGALRM, _fire)
            signal.setitimer(signal.ITIMER_REAL, seconds)
        yield preemptive
    finally:
        # the alarm may also fire *inside* this finally (before the
        # disarm call lands); the nested finally makes sure the stack
        # entry is popped even then, or an expired deadline would leak
        # and time out every later run on the thread
        try:
            if previous is not None:
                signal.setitimer(signal.ITIMER_REAL, 0.0)
                signal.signal(signal.SIGALRM, previous)
        finally:
            _state.stack.pop()
