"""Candidate executions: events plus named base relations.

An axiomatic memory model judges *candidate executions* (paper §2.2): a set
of events together with base relations (``po``, ``rf``, ``co``, ``sc``,
``rmw``, ``dep``, ...).  The model's derived relations and axioms are then
relational expressions over those names — evaluated via
:mod:`repro.lang.eval`.

:class:`Execution` is deliberately model-agnostic: PTX, scoped RC11, and TSO
all reuse it with their own event types and relation vocabularies.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, Mapping, Sequence, Tuple

from ..lang import Env
from ..relation import Relation


@dataclass(frozen=True)
class Execution:
    """An immutable candidate execution.

    ``events`` are model-specific event objects (hashable atoms); every
    relation in ``relations`` ranges over those events.
    """

    events: Tuple = ()
    relations: Mapping[str, Relation] = field(default_factory=dict)

    def relation(self, name: str) -> Relation:
        """Fetch a base relation, defaulting to empty."""
        return self.relations.get(name, Relation.empty(2))

    def with_relations(self, **updates: Relation) -> "Execution":
        """A copy with the given relations added or replaced."""
        merged: Dict[str, Relation] = dict(self.relations)
        merged.update(updates)
        return replace(self, relations=merged)

    def env(self, extra: Mapping[str, Relation] | None = None) -> Env:
        """An evaluation environment over this execution's events."""
        bindings: Dict[str, Relation] = dict(self.relations)
        if extra:
            bindings.update(extra)
        return Env(universe=Relation.set_of(self.events), bindings=bindings)

    def events_of_thread(self, thread) -> Tuple:
        """Events executed by ``thread``, in program order."""
        po = self.relation("po")
        mine = [e for e in self.events if getattr(e, "thread", None) == thread]

        def po_key(event):
            return sum(1 for other in mine if (other, event) in po)

        return tuple(sorted(mine, key=po_key))


def program_order(threads: Sequence[Sequence]) -> Relation:
    """Build ``po`` from per-thread event sequences.

    Program order relates every event to all later events of the same thread
    (the fully unrolled straight-line execution, per §2.2).
    """
    pairs = []
    for events in threads:
        events = list(events)
        for i, a in enumerate(events):
            for b in events[i + 1 :]:
                pairs.append((a, b))
    return Relation(pairs)


def same_location(events: Iterable) -> Relation:
    """All pairs of memory events accessing the same (non-None) location."""
    by_loc: Dict = {}
    for event in events:
        loc = getattr(event, "loc", None)
        if loc is not None:
            by_loc.setdefault(loc, []).append(event)
    return Relation(
        (a, b)
        for group in by_loc.values()
        for a in group
        for b in group
        if a != b
    )
