"""Scope hierarchies: System → GPU → CTA → Thread.

PTX (and our scoped C++ model) annotate strong operations with a *scope*
(paper Table 1): ``.cta`` covers threads in the same cooperative thread
array, ``.gpu`` covers threads on the same device, and ``.sys`` covers every
thread in the program, including host threads.  Scope *inclusion* — whether
the scope named by one operation contains the thread executing another — is
the ingredient of PTX moral strength (§8.6) and of the scoped-RC11 ``incl``
relation (Figure 10).

The hierarchy forms a tree (the paper encodes the same tree in Alloy,
Figure 14).  We model thread identity structurally: a device thread is
addressed by ``(gpu, cta, thread)`` and a host thread by ``host:<n>``.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass
from typing import Iterable, Iterator, Optional, Tuple


class Scope(enum.Enum):
    """A PTX scope level (Table 1 of the paper / Table 18 of the PTX ISA)."""

    CTA = "cta"
    GPU = "gpu"
    SYS = "sys"

    def __repr__(self) -> str:
        return f".{self.value}"

    @property
    def rank(self) -> int:
        """Breadth of the scope: higher rank includes more threads."""
        return {"cta": 0, "gpu": 1, "sys": 2}[self.value]

    def __le__(self, other: "Scope") -> bool:
        return self.rank <= other.rank

    def __lt__(self, other: "Scope") -> bool:
        return self.rank < other.rank


@dataclass(frozen=True, order=True)
class ThreadId:
    """A thread's position in the scope tree.

    Device threads have all three coordinates; host threads (which
    participate only at ``.sys`` scope) have ``gpu is None`` and a
    distinguishing ``thread`` index.
    """

    gpu: Optional[int]
    cta: Optional[int]
    thread: int

    def __post_init__(self):
        if (self.gpu is None) != (self.cta is None):
            raise ValueError("host threads must leave both gpu and cta unset")

    @property
    def is_host(self) -> bool:
        """Whether this is a host (CPU) thread."""
        return self.gpu is None

    def __repr__(self) -> str:
        if self.is_host:
            return f"host:{self.thread}"
        return f"d{self.gpu}c{self.cta}t{self.thread}"


def device_thread(gpu: int, cta: int, thread: int) -> ThreadId:
    """A device thread at the given coordinates."""
    return ThreadId(gpu=gpu, cta=cta, thread=thread)


def host_thread(index: int) -> ThreadId:
    """A host thread (participates only at ``.sys`` scope)."""
    return ThreadId(gpu=None, cta=None, thread=index)


@dataclass(frozen=True)
class ScopeInstance:
    """A concrete node of the scope tree: which subtree a scoped op names.

    ``level=SYS`` is the root; ``level=GPU`` pins a device; ``level=CTA``
    pins a device and a CTA.
    """

    level: Scope
    gpu: Optional[int] = None
    cta: Optional[int] = None

    def contains(self, thread: ThreadId) -> bool:
        """Whether ``thread`` belongs to this scope-tree subtree."""
        if self.level is Scope.SYS:
            return True
        if thread.is_host:
            return False
        if self.level is Scope.GPU:
            return thread.gpu == self.gpu
        return thread.gpu == self.gpu and thread.cta == self.cta

    def __repr__(self) -> str:
        if self.level is Scope.SYS:
            return "sys"
        if self.level is Scope.GPU:
            return f"gpu({self.gpu})"
        return f"cta({self.gpu},{self.cta})"


def scope_instance(thread: ThreadId, level: Scope) -> ScopeInstance:
    """The scope-tree node named by an operation with scope ``level`` on ``thread``.

    Host threads may only name ``.sys`` scope (they are outside every GPU and
    CTA); PTX programs executing on the host use system-scoped operations.
    """
    if level is Scope.SYS:
        return ScopeInstance(level=Scope.SYS)
    if thread.is_host:
        raise ValueError(f"host thread {thread} cannot name scope {level}")
    if level is Scope.GPU:
        return ScopeInstance(level=Scope.GPU, gpu=thread.gpu)
    return ScopeInstance(level=Scope.CTA, gpu=thread.gpu, cta=thread.cta)


def scope_includes(thread_a: ThreadId, level_a: Scope, thread_b: ThreadId) -> bool:
    """Whether the scope named by (thread_a, level_a) includes thread_b.

    This is the inclusion test used by moral strength: "each operation is
    strong and specifies a scope that includes the thread executing the
    other operation" (§8.6).
    """
    return scope_instance(thread_a, level_a).contains(thread_b)


def mutually_inclusive(
    thread_a: ThreadId, level_a: Scope, thread_b: ThreadId, level_b: Scope
) -> bool:
    """Symmetric scope inclusion: each op's scope includes the other's thread.

    This is HSA/HRF-indirect style inclusion (the paper contrasts it with
    HRF-direct, which would demand *identical* scopes).
    """
    return scope_includes(thread_a, level_a, thread_b) and scope_includes(
        thread_b, level_b, thread_a
    )


def covering_shape(tids: "Iterable[ThreadId]") -> "SystemShape":
    """The smallest shape (no smaller than the default) covering ``tids``.

    Litmus text carries placements but no topology line, so the parser —
    and anything else reconstructing a program from placements alone —
    needs a canonical shape.  Growing the *default* shape keeps programs
    whose threads already fit it bit-identical to ones built with
    ``SystemShape()``, so text round-trips compare equal.
    """
    shape = SystemShape()
    gpus, ctas = shape.gpus, shape.ctas_per_gpu
    threads, hosts = shape.threads_per_cta, shape.host_threads
    for tid in tids:
        if tid.is_host:
            hosts = max(hosts, tid.thread + 1)
        else:
            gpus = max(gpus, tid.gpu + 1)
            ctas = max(ctas, tid.cta + 1)
            threads = max(threads, tid.thread + 1)
    return SystemShape(
        gpus=gpus, ctas_per_gpu=ctas,
        threads_per_cta=threads, host_threads=hosts,
    )


@dataclass(frozen=True)
class SystemShape:
    """The machine topology a program runs on: devices × CTAs × threads.

    Litmus tests pin their threads to concrete coordinates; the shape
    records how many of each level exist so helper constructors and the
    skeleton generator can enumerate placements.
    """

    gpus: int = 1
    ctas_per_gpu: int = 2
    threads_per_cta: int = 2
    host_threads: int = 0

    def device_threads(self) -> Iterator[ThreadId]:
        """All device threads, lexicographically."""
        for gpu, cta, thread in itertools.product(
            range(self.gpus), range(self.ctas_per_gpu), range(self.threads_per_cta)
        ):
            yield device_thread(gpu, cta, thread)

    def all_threads(self) -> Iterator[ThreadId]:
        """All threads, device first then host."""
        yield from self.device_threads()
        for index in range(self.host_threads):
            yield host_thread(index)

    def same_cta(self, a: ThreadId, b: ThreadId) -> bool:
        """Whether two threads share a CTA."""
        return (
            not a.is_host
            and not b.is_host
            and a.gpu == b.gpu
            and a.cta == b.cta
        )

    def same_gpu(self, a: ThreadId, b: ThreadId) -> bool:
        """Whether two threads share a device."""
        return not a.is_host and not b.is_host and a.gpu == b.gpu


def distinct_cta_threads(count: int, shape: Optional[SystemShape] = None) -> Tuple[ThreadId, ...]:
    """``count`` threads, each in its own CTA (the usual litmus placement)."""
    shape = shape or SystemShape(gpus=1, ctas_per_gpu=max(2, count), threads_per_cta=1)
    if shape.gpus * shape.ctas_per_gpu < count:
        raise ValueError("shape has too few CTAs for the requested thread count")
    threads = []
    for index in range(count):
        gpu, cta = divmod(index, shape.ctas_per_gpu)
        threads.append(device_thread(gpu, cta, 0))
    return tuple(threads)


def same_cta_threads(count: int) -> Tuple[ThreadId, ...]:
    """``count`` threads in one CTA (for .cta-scope litmus variants)."""
    return tuple(device_thread(0, 0, i) for i in range(count))
