"""Shared substrate: scope trees, executions, and common vocabulary."""

from .execution import Execution, program_order, same_location
from .scopes import (
    Scope,
    ScopeInstance,
    SystemShape,
    ThreadId,
    device_thread,
    distinct_cta_threads,
    host_thread,
    mutually_inclusive,
    same_cta_threads,
    scope_includes,
    scope_instance,
)

__all__ = [
    "Execution",
    "Scope",
    "ScopeInstance",
    "SystemShape",
    "ThreadId",
    "device_thread",
    "distinct_cta_threads",
    "host_thread",
    "mutually_inclusive",
    "program_order",
    "same_cta_threads",
    "same_location",
    "scope_includes",
    "scope_instance",
]
