"""The generic scope tree, encoded relationally (paper Figure 14).

The paper's Alloy model describes scope hierarchies abstractly::

    sig Scope { subscope: set Scope }
    fact { subscope .~ subscope in iden }   -- at most one parent
    fact { acyclic[subscope] }
    fun System : Scope { Scope - Scope.subscope }
    fact { one System }                     -- exactly one root

This module restates those facts over the shared relational AST, so they
can be (a) checked against the concrete scope trees induced by a
:class:`~repro.core.scopes.SystemShape` and (b) handed to the bounded
model finder to *enumerate* all abstract scope trees of a given size —
which Cayley's formula says should number ``n^(n-1)`` over ``n`` labelled
nodes (a property test makes the model finder prove us right).

The "one root" fact needs no cardinality primitive: a set has at most one
element iff its self-product is contained in the identity.
"""

from __future__ import annotations

from typing import Iterator, Tuple

from ..core.scopes import SystemShape
from ..lang import Env, ast, eval_formula
from ..relation import Relation
from .bounds import Bounds, Universe
from .finder import Instance, instances

#: The subscope relation: parent → child (Figure 14).
subscope = ast.rel("subscope")

#: All scope atoms, as a set variable.
scopes = ast.set_("Scope")

#: The root: scopes that are nobody's child (Alloy's ``Scope - Scope.subscope``).
system: ast.Expr = scopes - (scopes @ subscope)


def tree_facts() -> ast.Formula:
    """The Figure 14 facts as one conjunction."""
    return ast.conj(
        # each scope has at most one parent: subscope . ~subscope in iden
        ast.Subset(subscope @ ast.Transpose(subscope), ast.Iden()),
        # the hierarchy has no cycles
        ast.Acyclic(subscope),
        # subscope stays within the scope set
        ast.Subset(subscope, scopes.product(scopes)),
        # there is exactly one root, called System
        ast.SomeF(system),
        ast.Subset(system.product(system), ast.Iden()),
        # every non-root is reachable from the root (connectedness)
        ast.Subset(
            scopes - system,
            system @ ast.TClosure(subscope),
        ),
    )


def shape_subscope(shape: SystemShape) -> Tuple[Relation, Relation]:
    """The concrete (Scope set, subscope relation) a machine shape induces.

    Nodes are labelled tuples: ``("sys",)``, ``("gpu", g)``,
    ``("cta", g, c)``, and thread leaves from
    :meth:`~repro.core.scopes.SystemShape.all_threads`.
    """
    nodes = [("sys",)]
    edges = []
    for gpu in range(shape.gpus):
        nodes.append(("gpu", gpu))
        edges.append((("sys",), ("gpu", gpu)))
        for cta in range(shape.ctas_per_gpu):
            nodes.append(("cta", gpu, cta))
            edges.append((("gpu", gpu), ("cta", gpu, cta)))
    for thread in shape.all_threads():
        node = ("thread", thread)
        nodes.append(node)
        if thread.is_host:
            edges.append((("sys",), node))
        else:
            edges.append((("cta", thread.gpu, thread.cta), node))
    return Relation.set_of(nodes), Relation(edges)


def check_shape(shape: SystemShape) -> bool:
    """Whether the concrete tree of a machine shape satisfies Figure 14."""
    scope_set, sub = shape_subscope(shape)
    env = Env(
        universe=scope_set,
        bindings={"Scope": scope_set, "subscope": sub},
    )
    return eval_formula(tree_facts(), env)


def enumerate_scope_trees(size: int) -> Iterator[Instance]:
    """All rooted trees over ``size`` labelled scope atoms (via SAT)."""
    universe = Universe(tuple(f"s{i}" for i in range(size)))
    bounds = Bounds(universe)
    bounds.bound_set_exactly("Scope", universe.atoms)
    bounds.bound("subscope", 2)
    yield from instances(tree_facts(), bounds)


def count_scope_trees(size: int) -> int:
    """The number of rooted labelled trees (Cayley: ``size**(size-1)``)."""
    return sum(1 for _ in enumerate_scope_trees(size))
