"""Bounded relational model finding over SAT (the Alloy/Kodkod analog)."""

from .bounds import Bounds, RelBound, Universe
from .finder import Instance, check, instances, solve, solve_translation
from .translate import Translation, Translator

__all__ = [
    "Bounds",
    "Instance",
    "RelBound",
    "Translation",
    "Translator",
    "Universe",
    "check",
    "instances",
    "solve",
    "solve_translation",
]
