"""The model-finding front end (the Alloy Analyzer analog, §5.1–5.2).

``solve`` finds an instance of a formula within bounds; ``check`` searches
for a counterexample to an assertion (Alloy's ``check`` command, Figure
16a); ``instances`` enumerates satisfying instances up to the witness
relations.  Instances come back as plain ``name -> Relation`` maps, so they
plug directly into the concrete evaluator for cross-validation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Optional

from ..lang import ast
from ..relation import Relation
from ..sat.solver import Solver
from .bounds import Bounds
from .translate import Translation, Translator


@dataclass(frozen=True)
class Instance:
    """A concrete binding of every bounded relation."""

    relations: Dict[str, Relation]

    def __getitem__(self, name: str) -> Relation:
        return self.relations[name]

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{name}={len(rel)}t" for name, rel in sorted(self.relations.items())
        )
        return f"<Instance {parts}>"


def _decode(translation: Translation, model: Dict[int, bool]) -> Instance:
    decoded = translation.decode(model)
    return Instance(
        relations={name: Relation(tuples) for name, tuples in decoded.items()}
    )


def solve(
    formula: ast.Formula,
    bounds: Bounds,
    configure: Optional[callable] = None,
) -> Optional[Instance]:
    """Find an instance satisfying ``formula``, or None.

    ``configure`` receives the :class:`Translator` before solving, for
    extra-logical constraints (e.g. rf functionality via ``exactly_one_of``).
    """
    translator = Translator(bounds)
    if configure is not None:
        configure(translator)
    translator.assert_formula(formula)
    translation = translator.finish()
    solver = Solver(translation.cnf)
    if not solver.solve():
        return None
    return _decode(translation, solver.model())


def check(
    assertion: ast.Formula,
    bounds: Bounds,
    configure: Optional[callable] = None,
) -> Optional[Instance]:
    """Search for a counterexample to ``assertion`` (Alloy ``check``).

    Returns a violating instance, or None if the assertion holds within
    the bounds.
    """
    return solve(ast.Not(assertion), bounds, configure=configure)


def instances(
    formula: ast.Formula,
    bounds: Bounds,
    configure: Optional[callable] = None,
    limit: Optional[int] = None,
) -> Iterator[Instance]:
    """Enumerate satisfying instances, distinct on the witness relations."""
    translator = Translator(bounds)
    if configure is not None:
        configure(translator)
    translator.assert_formula(formula)
    translation = translator.finish()
    projection = translation.projection_vars()
    count = 0
    while limit is None or count < limit:
        solver = Solver(translation.cnf)
        if not solver.solve():
            return
        model = solver.model()
        yield _decode(translation, model)
        count += 1
        if not projection:
            return
        translation.cnf.add_clause(
            [-(var) if model.get(var, False) else var for var in projection]
        )
