"""The model-finding front end (the Alloy Analyzer analog, §5.1–5.2).

``solve`` finds an instance of a formula within bounds; ``check`` searches
for a counterexample to an assertion (Alloy's ``check`` command, Figure
16a); ``instances`` enumerates satisfying instances up to the witness
relations.  Instances come back as plain ``name -> Relation`` maps, so they
plug directly into the concrete evaluator for cross-validation.

Enumeration runs on one *incremental* SAT solver: blocking clauses are
pushed into the live solver (never into the shared CNF), so learned
clauses, variable activities and saved phases persist across the whole
enumeration, and the caller's :class:`~repro.kodkod.translate.Translation`
stays pristine and re-enumerable.

Every SAT call records a :class:`~repro.sat.solver.SolverStats` snapshot on
the translation (and into the optional ``stats`` collector), so callers can
observe decisions/conflicts/learned-clause reuse per query.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

from ..lang import ast
from ..relation import Relation
from ..sat.solver import Solver, SolverStats, enumerate_models
from .bounds import Bounds
from .translate import Translation, Translator


@dataclass(frozen=True)
class Instance:
    """A concrete binding of every bounded relation.

    Instances are plain data by design: :meth:`to_dict` flattens them to
    JSON-native structures so they can cross process boundaries (worker
    IPC in the parallel litmus session) or be persisted, and
    :meth:`from_dict` rebuilds an equal instance.  Atom order inside each
    relation is canonicalized by sorting on the repr of the tuples.
    """

    relations: Dict[str, Relation]

    def __getitem__(self, name: str) -> Relation:
        return self.relations[name]

    def to_dict(self) -> Dict[str, List[list]]:
        """The bindings as ``{name: sorted list of atom tuples}``."""
        return {
            name: sorted((list(t) for t in rel), key=repr)
            for name, rel in sorted(self.relations.items())
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, List[list]]) -> "Instance":
        """Rebuild from :meth:`to_dict` output."""
        return cls(
            relations={
                name: Relation(tuple(t) for t in tuples)
                for name, tuples in payload.items()
            }
        )

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{name}={len(rel)}t" for name, rel in sorted(self.relations.items())
        )
        return f"<Instance {parts}>"


def _decode(translation: Translation, model: Dict[int, bool]) -> Instance:
    decoded = translation.decode(model)
    return Instance(
        relations={name: Relation(tuples) for name, tuples in decoded.items()}
    )


def translate_problem(
    formula: ast.Formula,
    bounds: Bounds,
    configure: Optional[callable] = None,
) -> Translation:
    """Translate a bounded problem to CNF without solving it.

    Public so the certificate layer (:mod:`repro.cert.verdict`) can hold
    on to the translation — the original CNF and bounds are exactly what
    an independent checker validates traces and witnesses against.
    """
    translator = Translator(bounds)
    if configure is not None:
        configure(translator)
    translator.assert_formula(formula)
    return translator.finish()


def solve_translation(
    translation: Translation,
    stats: Optional[List[SolverStats]] = None,
    proof=None,
) -> Optional[Instance]:
    """Solve a prepared translation, recording solver stats on it.

    ``proof`` attaches a DRAT logger to the solver (see
    :mod:`repro.cert.drat`), so an unsatisfiable query leaves a trace the
    independent checker can validate.
    """
    solver = Solver(translation.cnf, proof=proof)
    satisfiable = solver.solve()
    snapshot = solver.stats.copy()
    translation.solver_stats.append(snapshot)
    if stats is not None:
        stats.append(snapshot)
    if not satisfiable:
        return None
    return _decode(translation, solver.model())


def solve(
    formula: ast.Formula,
    bounds: Bounds,
    configure: Optional[callable] = None,
    stats: Optional[List[SolverStats]] = None,
) -> Optional[Instance]:
    """Find an instance satisfying ``formula``, or None.

    ``configure`` receives the :class:`Translator` before solving, for
    extra-logical constraints (e.g. rf functionality via ``exactly_one_of``).
    ``stats``, if given, receives one :class:`SolverStats` snapshot.
    """
    return solve_translation(
        translate_problem(formula, bounds, configure), stats=stats
    )


def check(
    assertion: ast.Formula,
    bounds: Bounds,
    configure: Optional[callable] = None,
    stats: Optional[List[SolverStats]] = None,
) -> Optional[Instance]:
    """Search for a counterexample to ``assertion`` (Alloy ``check``).

    Returns a violating instance, or None if the assertion holds within
    the bounds.
    """
    return solve(ast.Not(assertion), bounds, configure=configure, stats=stats)


class _StatsFanout:
    """Append-only sink duplicating per-solve stats into several lists."""

    def __init__(self, *sinks: Optional[List[SolverStats]]):
        self.sinks = [sink for sink in sinks if sink is not None]

    def append(self, snapshot: SolverStats) -> None:
        for sink in self.sinks:
            sink.append(snapshot)


def instances(
    formula: ast.Formula,
    bounds: Bounds,
    configure: Optional[callable] = None,
    limit: Optional[int] = None,
    incremental: bool = True,
    stats: Optional[List[SolverStats]] = None,
    proof=None,
    blocking_out: Optional[List[List[int]]] = None,
) -> Iterator[Instance]:
    """Enumerate satisfying instances, distinct on the witness relations.

    Distinctness is judged *up to the witness (slack) relation variables*:
    two total SAT models that decode to the same relational binding count
    as one instance.  In particular, when every relation is exactly bounded
    there are no witness variables, and a satisfiable problem has exactly
    one instance — the enumeration yields it and stops, regardless of
    ``limit`` and of how many total SAT models the Tseitin internals admit.

    One incremental solver carries learned clauses across the enumeration
    (pass ``incremental=False`` for the rebuild-per-instance baseline); the
    translation's CNF is never mutated, so the same formula/bounds can be
    enumerated repeatedly with identical results.

    ``proof`` and ``blocking_out`` feed the certificate layer: the DRAT
    logger records the solve, and every pushed blocking clause is exposed
    so enumeration completeness can be independently certified.
    """
    translation = translate_problem(formula, bounds, configure)
    projection = translation.projection_vars()
    sink = _StatsFanout(translation.solver_stats, stats)
    for model in enumerate_models(
        translation.cnf,
        projection=projection,
        limit=limit,
        incremental=incremental,
        stats_out=sink,
        proof=proof,
        blocking_out=blocking_out,
    ):
        yield _decode(translation, model)
