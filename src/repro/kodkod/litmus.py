"""SAT-backed litmus checking (the paper's Alloy methodology, §5.2).

Instead of enumerating candidate executions one by one, encode the whole
search as a single bounded relational problem: the program's ``po``,
``rmw``, ``dep``, event-class sets and moral strength are *exact* bounds;
the witness relations ``rf``, ``co`` and ``sc`` are left free within
structural upper bounds; the six PTX axioms plus witness well-formedness
are asserted; and the litmus condition becomes a relational constraint on
``rf``/``co``.  One SAT call then decides whether the outcome is allowed.

Well-formedness, mirroring §3.4–3.5:

* ``rf`` — exactly one same-location write per read (cardinality, via the
  translator's ``exactly_one_of`` primitive);
* ``co`` — transitive, irreflexive, containing init-write edges, and
  relating every morally strong same-location write pair one way or the
  other (§8.8.6);
* ``sc`` — transitive, irreflexive, relating every morally strong
  ``fence.sc`` pair (§8.8.3).

Conditions are supported when register values are statically traceable to
constant stores (true for every paper litmus test); value-dependent chains
through RMWs fall back to the explicit enumerator.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..sat.solver import SolverStats

from ..core.execution import Execution, program_order
from ..lang import ast
from ..litmus.conditions import AndC, Condition, MemEq, NotC, OrC, RegEq, TrueC
from ..litmus.test import LitmusTest
from ..ptx import spec as ptx_spec
from ..ptx.events import Event, Sem, init_write
from ..ptx.isa import AtomOp
from ..ptx.model import build_env
from ..ptx.program import elaborate
from ..relation import Relation
from .bounds import Bounds, Universe
from .finder import Instance, instances, solve
from .translate import Translator


class UnsupportedCondition(ValueError):
    """The condition cannot be phrased relationally (value-dependent)."""


class UnsupportedProgram(ValueError):
    """The program's outcomes cannot be decoded from relational instances
    (some write stores a data-dependent value)."""


def static_write_values(elab) -> Dict[int, Optional[int]]:
    """Statically determined stored value per write eid (None = dynamic).

    Plain stores of integer literals are static; so is ``atom.exch`` with
    a constant operand (the exchange stores its operand regardless of the
    value read).  Everything else — RMW combines, register-valued stores —
    depends on the execution and maps to None.
    """
    values: Dict[int, Optional[int]] = {}
    for eid, recipe in elab.write_recipe.items():
        if recipe.rmw_op is None and isinstance(recipe.operand, int):
            values[eid] = recipe.operand
        elif (
            recipe.rmw_op is AtomOp.EXCH
            and recipe.rmw_operands
            and isinstance(recipe.rmw_operands[0], int)
        ):
            values[eid] = recipe.rmw_operands[0]
        else:
            values[eid] = None
    return values


class _ConditionCompiler:
    """Compiles final-state conditions to relational formulas.

    Mints fresh constant relations (``__constN``) for the specific event
    pairs a condition pins down; the caller binds them exactly.
    """

    def __init__(self, test: LitmusTest, elab, events: Tuple[Event, ...]):
        self.test = test
        self.elab = elab
        self.events = events
        self.consts: Dict[str, Relation] = {}
        self._write_values = static_write_values(elab)

    def _value_of(self, write: Event) -> Optional[int]:
        if write not in self.elab.events:
            return 0  # init write
        return self._write_values.get(write.eid)

    def _const(self, pairs) -> ast.Var:
        name = f"__const{len(self.consts)}"
        self.consts[name] = Relation(pairs)
        return ast.Var(name, arity=2)

    def _reg_atom(self, atom: RegEq) -> ast.Formula:
        thread = self.test.threads[atom.thread_index]
        read: Optional[Event] = None
        for thread_events in self.elab.by_thread:
            for event in thread_events:
                if (
                    event.thread == thread
                    and self.elab.read_dst.get(event.eid) == atom.reg
                ):
                    read = event
        if read is None:
            raise UnsupportedCondition(f"no read defines {atom!r}")
        sources: List[Event] = []
        for event in self.events:
            if not event.is_write or event.loc != read.loc:
                continue
            value = self._value_of(event)
            if value is None:
                raise UnsupportedCondition(
                    f"write {event!r} has a data-dependent value"
                )
            if value == atom.value:
                sources.append(event)
        if not sources:
            return ast.NoF(ast.Univ())  # value never produced
        return ast.SomeF(
            ast.Inter(ast.rel("rf"), self._const((s, read) for s in sources))
        )

    def _mem_atom(self, atom: MemEq) -> ast.Formula:
        loc_writes = [
            e for e in self.events if e.is_write and e.loc == atom.loc
        ]
        disjuncts: List[ast.Formula] = []
        for event in loc_writes:
            value = self._value_of(event)
            if value is None:
                raise UnsupportedCondition(
                    f"write {event!r} has a data-dependent value"
                )
            if value != atom.value:
                continue
            outgoing = [
                (event, other) for other in loc_writes if other is not event
            ]
            if outgoing:
                disjuncts.append(
                    ast.NoF(ast.Inter(ast.rel("co"), self._const(outgoing)))
                )
            else:
                disjuncts.append(ast.TrueF())
        if not disjuncts:
            return ast.NoF(ast.Univ())
        out = disjuncts[0]
        for d in disjuncts[1:]:
            out = ast.Or(out, d)
        return out

    def compile(self, condition: Condition) -> ast.Formula:
        """Translate a condition into a relational formula."""
        if isinstance(condition, RegEq):
            return self._reg_atom(condition)
        if isinstance(condition, MemEq):
            return self._mem_atom(condition)
        if isinstance(condition, AndC):
            return ast.And(self.compile(condition.left), self.compile(condition.right))
        if isinstance(condition, OrC):
            return ast.Or(self.compile(condition.left), self.compile(condition.right))
        if isinstance(condition, NotC):
            return ast.Not(self.compile(condition.inner))
        if isinstance(condition, TrueC):
            return ast.TrueF()
        raise UnsupportedCondition(f"unknown condition node {condition!r}")


def encode_litmus(test: LitmusTest, include_condition: bool = True):
    """Build the bounded relational problem for ``test``.

    Returns ``(goal, bounds, configure)`` ready for the model finder: the
    well-formedness facts and the six PTX axioms, conjoined with the
    compiled litmus condition when ``include_condition`` is set.  Public
    so the certificate layer can translate the same problem and hand the
    resulting CNF/bounds to the independent checker.
    """
    program = test.program
    elab = elaborate(program)
    init_events = tuple(
        init_write(eid=len(elab.events) + index, loc=loc)
        for index, loc in enumerate(program.locations)
    )
    events: Tuple[Event, ...] = elab.events + init_events
    po = program_order(elab.by_thread)

    # Reuse the concrete env builder for all the constant relations/sets.
    static = Execution(
        events=events,
        relations={
            "po": po,
            "rmw": elab.rmw,
            "dep": elab.dep,
            "syncbarrier": elab.syncbarrier,
        },
    )
    env = build_env(static)

    universe = Universe(tuple(events))
    bounds = Bounds(universe)
    for name in ("po", "po_loc", "sloc", "rmw", "dep", "syncbarrier", "morally_strong"):
        bounds.bound_exactly(name, env.lookup(name), arity=2)
    for name in ptx_spec.BASE_SETS:
        bounds.bound_exactly(name, env.lookup(name), arity=1)

    reads = [e for e in events if e.is_read]
    writes = [e for e in events if e.is_write]
    rf_upper = [
        (w, r) for r in reads for w in writes if w.loc == r.loc and w is not r
    ]
    bounds.bound("rf", 2, upper=rf_upper)

    co_lower = [
        (init, w)
        for init in init_events
        for w in writes
        if w.loc == init.loc and w is not init
    ]
    co_upper = [
        (a, b) for a in writes for b in writes if a is not b and a.loc == b.loc
    ]
    bounds.bound("co", 2, lower=co_lower, upper=co_upper)

    sc_fences = [e for e in events if e.is_fence and e.sem is Sem.SC]
    sc_upper = [(a, b) for a in sc_fences for b in sc_fences if a is not b]
    bounds.bound("sc", 2, upper=sc_upper)

    # ---- well-formedness ----
    co = ast.rel("co")
    sc = ast.rel("sc")
    ms_var = ast.rel("morally_strong")
    sloc = ast.rel("sloc")
    ms_writes = ast.seq(
        ast.bracket(ast.set_("W")), ast.Inter(ms_var, sloc), ast.bracket(ast.set_("W"))
    )
    ms_fences = ast.seq(
        ast.bracket(ast.set_("F_sc")), ms_var, ast.bracket(ast.set_("F_sc"))
    )
    well_formed = ast.conj(
        ast.Subset(co @ co, co),
        ast.Irreflexive(co),
        ast.Subset(ms_writes, ast.Union_(co, ast.Transpose(co))),
        ast.Subset(sc @ sc, sc),
        ast.Irreflexive(sc),
        ast.Subset(ms_fences, ast.Union_(sc, ast.Transpose(sc))),
    )

    axioms = ast.conj(*ptx_spec.AXIOMS.values())

    parts = [well_formed, axioms]
    if include_condition:
        compiler = _ConditionCompiler(test, elab, events)
        parts.append(compiler.compile(test.condition))
        for name, relation in compiler.consts.items():
            bounds.bound_exactly(name, relation, arity=2)
    goal = ast.conj(*parts)

    def configure(translator: Translator) -> None:
        for read in reads:
            candidates = [
                (w, read) for w in writes if w.loc == read.loc and w is not read
            ]
            translator.exactly_one_of("rf", candidates)

    return goal, bounds, configure


def symbolic_outcome_allowed(
    test: LitmusTest,
    stats: Optional[List[SolverStats]] = None,
) -> bool:
    """Decide the test condition with one bounded SAT query.

    Returns True when some axiom-consistent execution satisfies the
    condition (i.e. the outcome is *allowed*).  ``stats``, if given,
    receives the SAT call's :class:`SolverStats` snapshot.
    """
    goal, bounds, configure = encode_litmus(test)
    return solve(goal, bounds, configure=configure, stats=stats) is not None


def symbolic_consistent_instances(
    test: LitmusTest,
    limit: Optional[int] = None,
    incremental: bool = True,
    stats: Optional[List[SolverStats]] = None,
    proof=None,
    blocking_out: Optional[List[List[int]]] = None,
):
    """Enumerate the axiom-consistent witness instances of ``test``.

    Yields one :class:`~repro.kodkod.finder.Instance` per distinct
    ``rf``/``co``/``sc`` binding admitted by the six PTX axioms — the
    paper's §5.2 "enumerate all bounded instances" methodology, driven by
    the incremental solver so learned clauses persist across the whole
    enumeration (``incremental=False`` restores the per-instance rebuild
    baseline for comparison).
    """
    goal, bounds, configure = encode_litmus(test, include_condition=False)
    return instances(
        goal,
        bounds,
        configure=configure,
        limit=limit,
        incremental=incremental,
        stats=stats,
        proof=proof,
        blocking_out=blocking_out,
    )


def symbolic_outcomes(
    test: LitmusTest,
    limit: Optional[int] = None,
    stats: Optional[List[SolverStats]] = None,
):
    """The full allowed-outcome *set* of ``test``, computed symbolically.

    Enumerates every axiom-consistent ``rf``/``co``/``sc`` instance
    (:func:`symbolic_consistent_instances`) and decodes each to the same
    :class:`~repro.search.ptx_search.Outcome` the enumerative engine
    reports — registers from ``rf`` plus static write values, memory from
    coherence-maximal writes.  This is the cross-engine oracle's strong
    comparison: two engines can agree on a verdict while disagreeing on
    the outcome set, and only the set comparison catches that.

    Decoding subtlety: the relational encoding leaves ``co`` free on
    *non*-morally-strong same-location write pairs, so the SAT solver may
    order racy writes the enumerative search deliberately leaves
    unordered.  Observability is therefore computed over the instance's
    ``co`` restricted to the edges the enumerative engine can produce —
    morally strong pairs, init-write edges, and causality-forced edges —
    which maps every spuriously-ordered instance onto the outcome of its
    minimally-ordered counterpart.

    Raises :class:`UnsupportedProgram` when some write's value is
    data-dependent (the instance alone cannot determine it).
    """
    from ..lang import eval_expr
    from ..search.ptx_search import Outcome, co_maximal_memory, register_sort_key

    program = test.program
    elab = elaborate(program)
    init_events = tuple(
        init_write(eid=len(elab.events) + index, loc=loc)
        for index, loc in enumerate(program.locations)
    )
    events: Tuple[Event, ...] = elab.events + init_events
    values = static_write_values(elab)

    def value_of(event: Event) -> int:
        if event in init_events:
            return 0
        value = values.get(event.eid)
        if value is None:
            raise UnsupportedProgram(
                f"write {event!r} stores a data-dependent value"
            )
        return value

    writes = [e for e in events if e.is_write]
    for write in writes:
        value_of(write)  # fail fast, before any SAT work

    static = Execution(
        events=events,
        relations={
            "po": program_order(elab.by_thread),
            "rmw": elab.rmw,
            "dep": elab.dep,
            "syncbarrier": elab.syncbarrier,
        },
    )
    # decode on the bitset kernel: one cause evaluation per instance is
    # the oracle path's hot spot, and the retained memo carries the
    # rf/sc-independent subexpressions across instances
    env = build_env(static, kernel="bit")
    ms = env.lookup("morally_strong")
    init_edges = Relation(
        (init, w)
        for init in init_events
        for w in writes
        if w.loc == init.loc and w is not init
    )

    cause_expr = ptx_spec.DERIVED["cause"]
    outcomes = set()
    for instance in symbolic_consistent_instances(test, limit=limit, stats=stats):
        rf, co, sc = instance["rf"], instance["co"], instance["sc"]
        registers: Dict = {}
        for write, read in rf:
            dst = elab.read_dst.get(read.eid)
            if dst is not None:
                registers[(read.thread, dst)] = value_of(write)
        bound = env.bind("rf", env.to_kernel(rf)).bind("sc", env.to_kernel(sc))
        cause = eval_expr(cause_expr, bound)
        observable_co = Relation(
            (a, b)
            for a, b in co
            if (a, b) in ms
            or (a, b) in init_edges
            or ((a, b) in cause and a.is_write and b.is_write and a.loc == b.loc)
        )
        outcomes.add(
            Outcome(
                registers=tuple(sorted(registers.items(), key=register_sort_key)),
                memory=co_maximal_memory(writes, observable_co, value_of),
            )
        )
    return frozenset(outcomes)
