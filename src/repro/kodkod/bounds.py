"""Universes and relational bounds (the Kodkod front half).

A bounded relational problem fixes a finite universe of atoms and, for each
relation variable, a *lower* bound (tuples that must be present) and an
*upper* bound (tuples that may be present).  Exact relations (known
constants, like a litmus test's ``po``) have equal bounds; witness
relations (``rf``, ``co``, ``sc``) leave slack that becomes SAT variables.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Sequence, Tuple

from ..relation import Relation

Atom = object


@dataclass(frozen=True)
class Universe:
    """An ordered finite set of atoms."""

    atoms: Tuple[Atom, ...]

    def __post_init__(self):
        if len(set(self.atoms)) != len(self.atoms):
            raise ValueError("universe atoms must be distinct")

    def __len__(self) -> int:
        return len(self.atoms)

    def __iter__(self):
        return iter(self.atoms)

    def tuples(self, arity: int) -> Iterable[tuple]:
        """Every tuple of the given arity over the universe."""
        return itertools.product(self.atoms, repeat=arity)


@dataclass(frozen=True)
class RelBound:
    """Lower/upper bounds for one relation variable."""

    name: str
    arity: int
    lower: FrozenSet[tuple]
    upper: FrozenSet[tuple]

    def __post_init__(self):
        if not self.lower <= self.upper:
            raise ValueError(f"lower bound of {self.name!r} exceeds upper bound")
        for t in self.upper:
            if len(t) != self.arity:
                raise ValueError(f"tuple {t!r} has wrong arity for {self.name!r}")

    @property
    def slack(self) -> FrozenSet[tuple]:
        """Tuples whose membership the solver decides."""
        return self.upper - self.lower


@dataclass
class Bounds:
    """A universe plus per-relation bounds."""

    universe: Universe
    relations: Dict[str, RelBound] = field(default_factory=dict)

    def bound(
        self,
        name: str,
        arity: int,
        lower: Iterable[tuple] = (),
        upper: Iterable[tuple] = None,
    ) -> "Bounds":
        """Bound ``name`` between ``lower`` and ``upper`` (default: all tuples)."""
        lower_set = frozenset(tuple(t) for t in lower)
        if upper is None:
            upper_set = frozenset(self.universe.tuples(arity))
        else:
            upper_set = frozenset(tuple(t) for t in upper) | lower_set
        self.relations[name] = RelBound(
            name=name, arity=arity, lower=lower_set, upper=upper_set
        )
        return self

    def bound_exactly(self, name: str, relation: Relation, arity: int = None) -> "Bounds":
        """Fix ``name`` to a known constant relation."""
        arity = arity if arity is not None else (relation.arity or 2)
        tuples = frozenset(relation.tuples)
        self.relations[name] = RelBound(
            name=name, arity=arity, lower=tuples, upper=tuples
        )
        return self

    def bound_set_exactly(self, name: str, atoms: Iterable[Atom]) -> "Bounds":
        """Fix a set (arity-1) variable to the given atoms."""
        return self.bound_exactly(name, Relation.set_of(atoms), arity=1)

    def get(self, name: str) -> RelBound:
        """Look up a relation's bound."""
        try:
            return self.relations[name]
        except KeyError:
            raise KeyError(f"no bound declared for relation {name!r}") from None
