"""Translating relational formulas to CNF (the Kodkod back half, §5.1).

Every relational expression denotes, under given bounds, a *boolean matrix*:
a sparse map from tuples to SAT literals (missing tuples are constant
false).  Expressions translate compositionally — union is an OR gate per
tuple, join is an OR of ANDs over the matched column, and transitive
closure is unrolled by iterative squaring, exactly as Kodkod computes it
("by iterating r = r ∪ r.r enough times to cover the upper bound", §5.3).

Formulas translate to single literals via Tseitin gates, so they can be
negated, conjoined, and asserted freely.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..lang import ast
from ..sat.cnf import Cnf
from ..sat.solver import SolverStats
from .bounds import Bounds

#: A sparse boolean matrix: tuple -> SAT literal (absent tuples are false).
Matrix = Dict[tuple, int]


@dataclass
class Translation:
    """The result of translating a problem: CNF plus variable maps."""

    cnf: Cnf
    bounds: Bounds
    #: relation name -> (tuple -> SAT variable), for slack tuples only
    free_vars: Dict[str, Dict[tuple, int]] = field(default_factory=dict)
    #: one SolverStats snapshot per SAT call made against this translation
    #: (appended by :mod:`repro.kodkod.finder`; solver observability, §5.2)
    solver_stats: List[SolverStats] = field(default_factory=list)

    def decode(self, model: Dict[int, bool]) -> Dict[str, set]:
        """Decode a SAT model into concrete relations (name -> tuple set)."""
        out: Dict[str, set] = {}
        for name, bound in self.bounds.relations.items():
            tuples = set(bound.lower)
            for t, var in self.free_vars.get(name, {}).items():
                if model.get(var, False):
                    tuples.add(t)
            out[name] = tuples
        return out

    def projection_vars(self) -> List[int]:
        """All relation-variable SAT vars (for model enumeration)."""
        return [
            var
            for per_rel in self.free_vars.values()
            for var in per_rel.values()
        ]


class Translator:
    """Compiles expressions/formulas over bounded relations into CNF."""

    def __init__(self, bounds: Bounds):
        self.bounds = bounds
        self.cnf = Cnf()
        self.free_vars: Dict[str, Dict[tuple, int]] = {}
        self._expr_cache: Dict[ast.Expr, Matrix] = {}
        for name, bound in bounds.relations.items():
            per_rel: Dict[tuple, int] = {}
            for t in sorted(bound.slack, key=repr):
                per_rel[t] = self.cnf.new_var()
            self.free_vars[name] = per_rel

    # ------------------------------------------------------------------
    # expressions
    # ------------------------------------------------------------------
    def matrix(self, expr: ast.Expr) -> Matrix:
        """The boolean matrix denoted by ``expr`` (cached per node)."""
        if expr in self._expr_cache:
            return self._expr_cache[expr]
        result = self._compute(expr)
        self._expr_cache[expr] = result
        return result

    def _compute(self, expr: ast.Expr) -> Matrix:
        cnf = self.cnf
        if isinstance(expr, ast.Var):
            bound = self.bounds.get(expr.name)
            if bound.arity != expr.arity:
                raise ValueError(
                    f"relation {expr.name!r} bound at arity {bound.arity}, "
                    f"used at arity {expr.arity}"
                )
            # sort the frozenset lower bound: matrix insertion order feeds
            # downstream gate creation, and hash order varies per process
            out: Matrix = {
                t: cnf.true_lit() for t in sorted(bound.lower, key=repr)
            }
            out.update(self.free_vars[expr.name])
            return out
        if isinstance(expr, ast.Iden):
            return {(a, a): cnf.true_lit() for a in self.bounds.universe}
        if isinstance(expr, ast.Univ):
            return {(a,): cnf.true_lit() for a in self.bounds.universe}
        if isinstance(expr, ast.Empty):
            return {}
        if isinstance(expr, ast.Union_):
            left, right = self.matrix(expr.left), self.matrix(expr.right)
            # iterate in insertion order (left first, then right-only):
            # raw set unions would make Tseitin gate numbering — and hence
            # the emitted CNF and DRAT certificates — vary with hash
            # randomization across runs
            out = {}
            for t, lit in left.items():
                out[t] = cnf.gate_or([lit, right[t]]) if t in right else lit
            for t, lit in right.items():
                if t not in left:
                    out[t] = lit
            return out
        if isinstance(expr, ast.Inter):
            left, right = self.matrix(expr.left), self.matrix(expr.right)
            return {
                t: cnf.gate_and([lit, right[t]])
                for t, lit in left.items()
                if t in right
            }
        if isinstance(expr, ast.Diff):
            left, right = self.matrix(expr.left), self.matrix(expr.right)
            out = {}
            for t, lit in left.items():
                if t in right:
                    out[t] = cnf.gate_and([lit, -right[t]])
                else:
                    out[t] = lit
            return out
        if isinstance(expr, ast.Join):
            return self._join(self.matrix(expr.left), self.matrix(expr.right))
        if isinstance(expr, ast.Product):
            left, right = self.matrix(expr.left), self.matrix(expr.right)
            return {
                s + t: cnf.gate_and([ls, lt])
                for s, ls in left.items()
                for t, lt in right.items()
            }
        if isinstance(expr, ast.Transpose):
            inner = self.matrix(expr.inner)
            return {(b, a): lit for (a, b), lit in inner.items()}
        if isinstance(expr, ast.TClosure):
            return self._closure(self.matrix(expr.inner))
        if isinstance(expr, ast.RTClosure):
            closed = self._closure(self.matrix(expr.inner))
            return self._with_iden(closed)
        if isinstance(expr, ast.Optional_):
            return self._with_iden(self.matrix(expr.inner))
        if isinstance(expr, ast.Bracket):
            inner = self.matrix(expr.inner)
            return {(t[0], t[0]): lit for t, lit in inner.items()}
        raise TypeError(f"unknown expression node: {expr!r}")

    def _with_iden(self, matrix: Matrix) -> Matrix:
        out = dict(matrix)
        for a in self.bounds.universe:
            out[(a, a)] = self.cnf.true_lit()
        return out

    def _join(self, left: Matrix, right: Matrix) -> Matrix:
        from collections import defaultdict

        by_first: Dict[object, List[Tuple[tuple, int]]] = defaultdict(list)
        for t, lit in right.items():
            by_first[t[0]].append((t[1:], lit))
        combos: Dict[tuple, List[int]] = defaultdict(list)
        for t, lit in left.items():
            for rest, rlit in by_first.get(t[-1], ()):  # type: ignore[arg-type]
                out_tuple = t[:-1] + rest
                if not out_tuple:
                    raise ValueError("join produced arity 0")
                combos[out_tuple].append(self.cnf.gate_and([lit, rlit]))
        return {
            t: (lits[0] if len(lits) == 1 else self.cnf.gate_or(lits))
            for t, lits in combos.items()
        }

    def _closure(self, matrix: Matrix) -> Matrix:
        """Transitive closure by iterative squaring (Kodkod-style)."""
        size = max(len(self.bounds.universe), 1)
        current = dict(matrix)
        steps = 1
        while steps < size:
            current = self._square(current)
            steps *= 2
        return current

    def _square(self, matrix: Matrix) -> Matrix:
        """One squaring step: r ∪ r;r."""
        composed = self._join(matrix, matrix)
        # insertion-order iteration, for the same determinism reason as
        # the Union_ case
        out = {}
        for t, lit in matrix.items():
            out[t] = (
                self.cnf.gate_or([lit, composed[t]]) if t in composed else lit
            )
        for t, lit in composed.items():
            if t not in matrix:
                out[t] = lit
        return out

    # ------------------------------------------------------------------
    # formulas
    # ------------------------------------------------------------------
    def literal(self, formula: ast.Formula) -> int:
        """A SAT literal equivalent to ``formula``."""
        cnf = self.cnf
        if isinstance(formula, ast.Subset):
            left, right = self.matrix(formula.left), self.matrix(formula.right)
            parts = [
                cnf.gate_or([-lit, right[t]]) if t in right else -lit
                for t, lit in left.items()
            ]
            return cnf.gate_and(parts)
        if isinstance(formula, ast.Equal):
            return cnf.gate_and(
                [
                    self.literal(ast.Subset(formula.left, formula.right)),
                    self.literal(ast.Subset(formula.right, formula.left)),
                ]
            )
        if isinstance(formula, ast.NoF):
            matrix = self.matrix(formula.expr)
            return cnf.gate_and([-lit for lit in matrix.values()])
        if isinstance(formula, ast.SomeF):
            matrix = self.matrix(formula.expr)
            return cnf.gate_or(list(matrix.values()))
        if isinstance(formula, ast.Acyclic):
            closed = self._closure(self.matrix(formula.expr))
            return cnf.gate_and(
                [-lit for (a, b), lit in closed.items() if a == b]
            )
        if isinstance(formula, ast.Irreflexive):
            matrix = self.matrix(formula.expr)
            return cnf.gate_and(
                [-lit for (a, b), lit in matrix.items() if a == b]
            )
        if isinstance(formula, ast.And):
            return cnf.gate_and([self.literal(formula.left), self.literal(formula.right)])
        if isinstance(formula, ast.Or):
            return cnf.gate_or([self.literal(formula.left), self.literal(formula.right)])
        if isinstance(formula, ast.Not):
            return -self.literal(formula.inner)
        if isinstance(formula, ast.TrueF):
            return cnf.true_lit()
        raise TypeError(f"unknown formula node: {formula!r}")

    def assert_formula(self, formula: ast.Formula) -> None:
        """Require ``formula`` to hold."""
        self.cnf.add_clause([self.literal(formula)])

    def exactly_one_of(self, name: str, tuples) -> None:
        """Constrain exactly one of the given tuples of relation ``name``.

        Used for functional witness relations (each read has exactly one
        rf source); expressible in relational logic only via cardinality,
        so exposed as a primitive, like Kodkod's multiplicity bounds.
        """
        lits = []
        bound = self.bounds.get(name)
        for t in tuples:
            t = tuple(t)
            if t in bound.lower:
                lits.append(self.cnf.true_lit())
            elif t in self.free_vars[name]:
                lits.append(self.free_vars[name][t])
        if not lits:
            raise ValueError(f"no candidate tuples for exactly-one on {name!r}")
        self.cnf.exactly_one(lits)

    def finish(self) -> Translation:
        """Package the accumulated CNF and variable maps."""
        return Translation(cnf=self.cnf, bounds=self.bounds, free_vars=self.free_vars)
