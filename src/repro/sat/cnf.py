"""CNF formulas and Tseitin-style gate construction.

Variables are positive integers; a literal is a signed integer (negative for
negation), DIMACS style.  :class:`Cnf` owns the variable counter so that
translators (notably :mod:`repro.kodkod.translate`) can allocate fresh
variables for Tseitin definitions without collisions.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

TRUE_LIT_NAME = "__true__"


class Cnf:
    """A growable CNF formula with gate helpers.

    The constant-true literal is materialised lazily as a reserved variable
    asserted by a unit clause; this keeps gate construction total even when
    inputs degenerate to constants.
    """

    def __init__(self) -> None:
        self.num_vars = 0
        self.clauses: List[List[int]] = []
        self._true_lit: Optional[int] = None

    def copy(self) -> "Cnf":
        """An independent copy (same variable counter, cloned clause lists)."""
        clone = Cnf()
        clone.num_vars = self.num_vars
        clone.clauses = [list(clause) for clause in self.clauses]
        clone._true_lit = self._true_lit
        return clone

    def new_var(self) -> int:
        """Allocate a fresh variable and return it (as a positive literal)."""
        self.num_vars += 1
        return self.num_vars

    def new_vars(self, count: int) -> List[int]:
        """Allocate ``count`` fresh variables."""
        return [self.new_var() for _ in range(count)]

    def add_clause(self, lits: Iterable[int]) -> None:
        """Add a clause (iterable of non-zero literals)."""
        clause = list(lits)
        if any(lit == 0 for lit in clause):
            raise ValueError("literal 0 is not allowed in a clause")
        for lit in clause:
            if abs(lit) > self.num_vars:
                raise ValueError(f"literal {lit} references an unallocated variable")
        self.clauses.append(clause)

    def add_clauses(self, clauses: Iterable[Iterable[int]]) -> None:
        """Add several clauses."""
        for clause in clauses:
            self.add_clause(clause)

    # ------------------------------------------------------------------
    # constants
    # ------------------------------------------------------------------
    def true_lit(self) -> int:
        """A literal constrained to be true."""
        if self._true_lit is None:
            self._true_lit = self.new_var()
            self.add_clause([self._true_lit])
        return self._true_lit

    def false_lit(self) -> int:
        """A literal constrained to be false."""
        return -self.true_lit()

    # ------------------------------------------------------------------
    # Tseitin gates: each returns a literal equivalent to the gate output
    # ------------------------------------------------------------------
    def gate_and(self, lits: Sequence[int]) -> int:
        """A literal equivalent to the conjunction of ``lits``."""
        lits = list(lits)
        if not lits:
            return self.true_lit()
        if len(lits) == 1:
            return lits[0]
        out = self.new_var()
        for lit in lits:
            self.add_clause([-out, lit])
        self.add_clause([out] + [-lit for lit in lits])
        return out

    def gate_or(self, lits: Sequence[int]) -> int:
        """A literal equivalent to the disjunction of ``lits``."""
        lits = list(lits)
        if not lits:
            return self.false_lit()
        if len(lits) == 1:
            return lits[0]
        out = self.new_var()
        for lit in lits:
            self.add_clause([out, -lit])
        self.add_clause([-out] + list(lits))
        return out

    def gate_not(self, lit: int) -> int:
        """Negation is free: just flip the literal."""
        return -lit

    def gate_implies(self, a: int, b: int) -> int:
        """A literal equivalent to ``a -> b``."""
        return self.gate_or([-a, b])

    def gate_iff(self, a: int, b: int) -> int:
        """A literal equivalent to ``a <-> b``."""
        out = self.new_var()
        self.add_clause([-out, -a, b])
        self.add_clause([-out, a, -b])
        self.add_clause([out, a, b])
        self.add_clause([out, -a, -b])
        return out

    def gate_ite(self, cond: int, then: int, other: int) -> int:
        """A literal equivalent to ``cond ? then : other``."""
        out = self.new_var()
        self.add_clause([-out, -cond, then])
        self.add_clause([-out, cond, other])
        self.add_clause([out, -cond, -then])
        self.add_clause([out, cond, -other])
        return out

    # ------------------------------------------------------------------
    # cardinality (pairwise encoding; fine at litmus-test scale)
    # ------------------------------------------------------------------
    def at_most_one(self, lits: Sequence[int]) -> None:
        """Assert that at most one of ``lits`` is true."""
        lits = list(lits)
        for i, a in enumerate(lits):
            for b in lits[i + 1 :]:
                self.add_clause([-a, -b])

    def exactly_one(self, lits: Sequence[int]) -> None:
        """Assert that exactly one of ``lits`` is true."""
        lits = list(lits)
        if not lits:
            raise ValueError("exactly_one of an empty set is unsatisfiable")
        self.add_clause(lits)
        self.at_most_one(lits)

    def __repr__(self) -> str:
        return f"Cnf(vars={self.num_vars}, clauses={len(self.clauses)})"
