"""A from-scratch incremental CDCL SAT solver: the backend of the relational model finder."""

from .cnf import Cnf
from .dimacs import read_dimacs, write_dimacs, write_dimacs_clauses
from .solver import (
    Clause,
    Solver,
    SolverStats,
    Unsatisfiable,
    enumerate_models,
    luby,
    solve_cnf,
)

__all__ = [
    "Clause",
    "Cnf",
    "Solver",
    "SolverStats",
    "Unsatisfiable",
    "enumerate_models",
    "luby",
    "read_dimacs",
    "solve_cnf",
    "write_dimacs",
    "write_dimacs_clauses",
]
