"""A from-scratch CDCL SAT solver: the backend of the relational model finder."""

from .cnf import Cnf
from .dimacs import read_dimacs, write_dimacs
from .solver import Solver, Unsatisfiable, enumerate_models, luby, solve_cnf

__all__ = [
    "Cnf",
    "Solver",
    "Unsatisfiable",
    "enumerate_models",
    "luby",
    "read_dimacs",
    "solve_cnf",
    "write_dimacs",
]
