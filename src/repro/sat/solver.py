"""An incremental CDCL SAT solver.

This is the backend of the bounded relational model finder
(:mod:`repro.kodkod`), playing the role that an off-the-shelf SAT solver
plays underneath Alloy/Kodkod in the paper (§5.1).  It is a conventional
conflict-driven clause-learning solver:

* two-watched-literal unit propagation
* first-UIP conflict analysis with learned-clause minimisation (self-
  subsumption against reason clauses)
* VSIDS-style variable activity (indexed max-heap) with exponential decay
  and phase saving
* Luby-sequence restarts
* activity/LBD-based learned-clause database reduction, triggered
  geometrically, so long runs don't grow watch lists without bound

The solver is *incremental*: :meth:`Solver.add_clause` may be called after
:meth:`Solver.solve` to strengthen the formula (the solver backtracks to
the root level, simplifies the clause against root-level assignments, and
re-attaches watches).  Model enumeration pushes blocking clauses into one
live solver, so learned clauses, variable activities and saved phases
persist across the whole enumeration — the dominant cost of enumerating
all bounded instances of a relational formula (§5.2, Figure 17) is paid
once instead of per instance.

Per-solver counters live in a structured :class:`SolverStats`, threaded up
through the model finder and the litmus runner for observability.

The implementation favours clarity over raw speed, but comfortably handles
the tens of thousands of clauses produced by litmus-scale relational
encodings.
"""

from __future__ import annotations

import time
from collections import defaultdict
from dataclasses import dataclass, fields, replace
from typing import Dict, Iterable, Iterator, List, Optional

from ..core.deadline import check_deadline
from .cnf import Cnf


class Unsatisfiable(Exception):
    """Raised by helpers that require a model when none exists."""


def luby(index: int) -> int:
    """The Luby restart sequence (1,1,2,1,1,2,4,...), 1-indexed."""
    x = index - 1
    size, seq = 1, 0
    while size < x + 1:
        seq += 1
        size = 2 * size + 1
    while size - 1 != x:
        size = (size - 1) // 2
        seq -= 1
        x %= size
    return 1 << seq


@dataclass
class SolverStats:
    """Structured per-solver counters (cumulative across incremental solves).

    Supports dict-style access (``stats["conflicts"]``) for backward
    compatibility, and field-wise subtraction so callers can compute
    per-solve deltas from snapshots: ``after - before``.
    """

    decisions: int = 0
    propagations: int = 0
    conflicts: int = 0
    restarts: int = 0
    learned: int = 0
    deleted: int = 0
    solves: int = 0
    solve_time: float = 0.0

    def __getitem__(self, key: str):
        if key not in self.as_dict():
            raise KeyError(key)
        return getattr(self, key)

    def copy(self) -> "SolverStats":
        """An independent snapshot of the current counters."""
        return replace(self)

    def __sub__(self, other: "SolverStats") -> "SolverStats":
        return SolverStats(
            **{
                f.name: getattr(self, f.name) - getattr(other, f.name)
                for f in fields(self)
            }
        )

    def __add__(self, other: "SolverStats") -> "SolverStats":
        return SolverStats(
            **{
                f.name: getattr(self, f.name) + getattr(other, f.name)
                for f in fields(self)
            }
        )

    def as_dict(self) -> Dict[str, object]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def format(self) -> str:
        """A compact one-line rendering for CLI/benchmark output."""
        return (
            f"decisions={self.decisions} propagations={self.propagations} "
            f"conflicts={self.conflicts} restarts={self.restarts} "
            f"learned={self.learned} deleted={self.deleted} "
            f"solves={self.solves} time={self.solve_time:.3f}s"
        )


class Clause(list):
    """A clause: a literal list plus learned-clause bookkeeping.

    Subclassing ``list`` keeps watch handling and conflict analysis working
    on plain indexing/iteration while giving the database reduction pass a
    place to hang activity and LBD (literal block distance).
    """

    __slots__ = ("learnt", "activity", "lbd")

    def __init__(self, lits: Iterable[int], learnt: bool = False, lbd: int = 0):
        super().__init__(lits)
        self.learnt = learnt
        self.activity = 0.0
        self.lbd = lbd


class _ActivityHeap:
    """Indexed binary max-heap of variables keyed on VSIDS activity.

    Replaces the O(num_vars) linear scan per decision with O(log n)
    pops/updates.  The heap shares the solver's activity array; uniform
    rescaling preserves the heap order, so only bumps need repair.
    """

    def __init__(self, activity: List[float]):
        self.activity = activity
        self.heap: List[int] = []
        self.pos: List[int] = [-1] * len(activity)

    def __contains__(self, var: int) -> bool:
        return self.pos[var] >= 0

    def __len__(self) -> int:
        return len(self.heap)

    def insert(self, var: int) -> None:
        if self.pos[var] >= 0:
            return
        self.pos[var] = len(self.heap)
        self.heap.append(var)
        self._sift_up(self.pos[var])

    def bumped(self, var: int) -> None:
        """Restore the heap property after ``activity[var]`` increased."""
        if self.pos[var] >= 0:
            self._sift_up(self.pos[var])

    def pop(self) -> int:
        heap, pos = self.heap, self.pos
        top = heap[0]
        last = heap.pop()
        pos[top] = -1
        if heap:
            heap[0] = last
            pos[last] = 0
            self._sift_down(0)
        return top

    def _sift_up(self, index: int) -> None:
        heap, pos, activity = self.heap, self.pos, self.activity
        var = heap[index]
        score = activity[var]
        while index > 0:
            parent = (index - 1) >> 1
            parent_var = heap[parent]
            if activity[parent_var] >= score:
                break
            heap[index] = parent_var
            pos[parent_var] = index
            index = parent
        heap[index] = var
        pos[var] = index

    def _sift_down(self, index: int) -> None:
        heap, pos, activity = self.heap, self.pos, self.activity
        var = heap[index]
        score = activity[var]
        size = len(heap)
        while True:
            child = 2 * index + 1
            if child >= size:
                break
            right = child + 1
            if right < size and activity[heap[right]] > activity[heap[child]]:
                child = right
            child_var = heap[child]
            if activity[child_var] <= score:
                break
            heap[index] = child_var
            pos[child_var] = index
            index = child
        heap[index] = var
        pos[var] = index


class Solver:
    """Incremental CDCL solver over a :class:`~repro.sat.cnf.Cnf` formula.

    The constructor copies the formula's clauses into solver-internal
    storage, so the caller's :class:`Cnf` is never mutated — blocking
    clauses and other incremental additions go through :meth:`add_clause`.
    """

    RESTART_BASE = 64
    ACTIVITY_DECAY = 0.95
    ACTIVITY_RESCALE = 1e100
    CLAUSE_DECAY = 0.999
    CLAUSE_RESCALE = 1e20
    #: geometric growth of the learned-clause budget per reduction
    LEARNTS_GROWTH = 1.3

    def __init__(self, cnf: Cnf, proof=None):
        #: optional proof sink (:class:`repro.cert.drat.DratLogger`-shaped:
        #: ``add``/``delete``/``extend`` taking literal iterables).  The
        #: solver logs every learned clause, every database deletion, every
        #: incremental input addition, and the final empty clause, so an
        #: UNSAT run leaves a DRAT trace checkable by
        #: :func:`repro.cert.checker.check_unsat_proof`.
        self.proof = proof
        self._refutation_logged = False
        self.num_vars = cnf.num_vars
        self.assign: List[Optional[bool]] = [None] * (self.num_vars + 1)
        self.level: List[int] = [0] * (self.num_vars + 1)
        self.reason: List[Optional[List[int]]] = [None] * (self.num_vars + 1)
        self.activity: List[float] = [0.0] * (self.num_vars + 1)
        self.phase: List[bool] = [False] * (self.num_vars + 1)
        self.var_inc = 1.0
        self.cla_inc = 1.0
        self.trail: List[int] = []
        self.trail_lim: List[int] = []
        self.qhead = 0
        self.watches: Dict[int, List[Clause]] = defaultdict(list)
        self.order = _ActivityHeap(self.activity)
        for var in range(1, self.num_vars + 1):
            self.order.insert(var)
        self.learnts: List[Clause] = []
        self.max_learnts = max(256.0, len(cnf.clauses) / 3.0)
        self.ok = True
        self.stats = SolverStats()
        for clause in cnf.clauses:
            self._add_clause(list(clause))
            if not self.ok:
                break

    # ------------------------------------------------------------------
    # clause management
    # ------------------------------------------------------------------
    def add_clause(self, lits: Iterable[int]) -> bool:
        """Add a clause to a live solver (the incremental interface).

        May be called after :meth:`solve`: the solver backtracks to the
        root level, simplifies the clause against root assignments,
        attaches watches, and unit-propagates any resulting implication.
        Learned clauses, activities and saved phases all survive.  Returns
        the solver's ``ok`` flag (False once the formula is root-level
        unsatisfiable).
        """
        clause = list(lits)
        if any(lit == 0 for lit in clause):
            raise ValueError("literal 0 is not allowed in a clause")
        for lit in clause:
            if abs(lit) > self.num_vars:
                raise ValueError(f"literal {lit} references an unallocated variable")
        if not self.ok:
            return False
        if self.proof is not None:
            # an incremental addition is a new input clause, not a derived
            # consequence: log it as an extension before any refutation it
            # may trigger
            self.proof.extend(clause)
        self._cancel_until(0)
        self._add_clause(clause)
        return self.ok

    def _log_refutation(self) -> None:
        """Close the proof trace with the empty clause (once)."""
        if self.proof is not None and not self._refutation_logged:
            self._refutation_logged = True
            self.proof.add(())

    def _add_clause(self, clause: List[int]) -> None:
        seen: set = set()
        simplified: List[int] = []
        for lit in clause:
            if -lit in seen:
                return  # tautology
            if lit in seen:
                continue
            value = self._value(lit)
            if value is True:
                return  # satisfied at root (additions happen at level 0)
            if value is False:
                continue  # falsified at root; drop literal
            seen.add(lit)
            simplified.append(lit)
        if not simplified:
            self.ok = False
            self._log_refutation()
            return
        if len(simplified) == 1:
            if not self._enqueue(simplified[0], None) or self._propagate() is not None:
                self.ok = False
                self._log_refutation()
            return
        self._attach(Clause(simplified))

    def _attach(self, clause: Clause) -> None:
        self.watches[clause[0]].append(clause)
        self.watches[clause[1]].append(clause)

    def _detach(self, clause: Clause) -> None:
        for lit in (clause[0], clause[1]):
            watch_list = self.watches[lit]
            for index, watched in enumerate(watch_list):
                if watched is clause:
                    watch_list[index] = watch_list[-1]
                    watch_list.pop()
                    break

    def _locked(self, clause: Clause) -> bool:
        """Whether the clause is the reason of its first literal (in use)."""
        return self.reason[abs(clause[0])] is clause

    def _reduce_db(self) -> None:
        """Drop the less useful half of the learned-clause database.

        Keeps binary clauses, glue clauses (LBD ≤ 2) and clauses currently
        locked as reasons; among the rest, the lowest-activity half goes.
        The budget then grows geometrically, so reductions stay rare.
        """
        self.learnts.sort(key=lambda c: c.activity)
        target = len(self.learnts) // 2
        kept: List[Clause] = []
        removed = 0
        for clause in self.learnts:
            if (
                removed < target
                and len(clause) > 2
                and clause.lbd > 2
                and not self._locked(clause)
            ):
                self._detach(clause)
                removed += 1
                if self.proof is not None:
                    self.proof.delete(list(clause))
            else:
                kept.append(clause)
        self.learnts = kept
        self.stats.deleted += removed
        self.max_learnts *= self.LEARNTS_GROWTH

    # ------------------------------------------------------------------
    # assignment primitives
    # ------------------------------------------------------------------
    def _value(self, lit: int) -> Optional[bool]:
        value = self.assign[abs(lit)]
        if value is None:
            return None
        return value if lit > 0 else not value

    def _enqueue(self, lit: int, reason: Optional[List[int]]) -> bool:
        value = self._value(lit)
        if value is not None:
            return value
        var = abs(lit)
        self.assign[var] = lit > 0
        self.level[var] = len(self.trail_lim)
        self.reason[var] = reason
        self.trail.append(lit)
        return True

    def _decision_level(self) -> int:
        return len(self.trail_lim)

    def _cancel_until(self, target_level: int) -> None:
        if self._decision_level() <= target_level:
            return
        boundary = self.trail_lim[target_level]
        for lit in reversed(self.trail[boundary:]):
            var = abs(lit)
            self.phase[var] = bool(self.assign[var])  # phase saving
            self.assign[var] = None
            self.reason[var] = None
            self.order.insert(var)
        del self.trail[boundary:]
        del self.trail_lim[target_level:]
        self.qhead = len(self.trail)

    # ------------------------------------------------------------------
    # propagation
    # ------------------------------------------------------------------
    def _propagate(self) -> Optional[Clause]:
        """Unit-propagate; return a conflicting clause or None."""
        while self.qhead < len(self.trail):
            lit = self.trail[self.qhead]
            self.qhead += 1
            self.stats.propagations += 1
            false_lit = -lit
            watch_list = self.watches[false_lit]
            kept: List[Clause] = []
            conflict: Optional[Clause] = None
            index = 0
            while index < len(watch_list):
                clause = watch_list[index]
                index += 1
                if clause[0] == false_lit:
                    clause[0], clause[1] = clause[1], clause[0]
                first = clause[0]
                if self._value(first) is True:
                    kept.append(clause)
                    continue
                moved = False
                for k in range(2, len(clause)):
                    if self._value(clause[k]) is not False:
                        clause[1], clause[k] = clause[k], clause[1]
                        self.watches[clause[1]].append(clause)
                        moved = True
                        break
                if moved:
                    continue
                kept.append(clause)
                if self._value(first) is False:
                    conflict = clause
                    kept.extend(watch_list[index:])
                    break
                self._enqueue(first, clause)
            self.watches[false_lit] = kept
            if conflict is not None:
                return conflict
        return None

    # ------------------------------------------------------------------
    # conflict analysis (first UIP)
    # ------------------------------------------------------------------
    def _bump(self, var: int) -> None:
        self.activity[var] += self.var_inc
        if self.activity[var] > self.ACTIVITY_RESCALE:
            for v in range(1, self.num_vars + 1):
                self.activity[v] *= 1.0 / self.ACTIVITY_RESCALE
            self.var_inc *= 1.0 / self.ACTIVITY_RESCALE
        self.order.bumped(var)

    def _bump_clause(self, clause: List[int]) -> None:
        if not isinstance(clause, Clause) or not clause.learnt:
            return
        clause.activity += self.cla_inc
        if clause.activity > self.CLAUSE_RESCALE:
            for learnt in self.learnts:
                learnt.activity *= 1.0 / self.CLAUSE_RESCALE
            self.cla_inc *= 1.0 / self.CLAUSE_RESCALE

    def _analyze(self, conflict: Clause) -> tuple[List[int], int]:
        learnt: List[int] = []
        seen = [False] * (self.num_vars + 1)
        counter = 0
        lit: Optional[int] = None
        reason: List[int] = conflict
        trail_index = len(self.trail) - 1
        current_level = self._decision_level()
        while True:
            self._bump_clause(reason)
            for q in reason:
                if q == lit:
                    continue  # the propagated literal itself, not an antecedent
                var = abs(q)
                if not seen[var] and self.level[var] > 0:
                    seen[var] = True
                    self._bump(var)
                    if self.level[var] == current_level:
                        counter += 1
                    else:
                        learnt.append(q)
            while not seen[abs(self.trail[trail_index])]:
                trail_index -= 1
            lit = self.trail[trail_index]
            var = abs(lit)
            seen[var] = False
            trail_index -= 1
            counter -= 1
            if counter == 0:
                learnt.insert(0, -lit)
                break
            clause = self.reason[var]
            reason = clause if clause is not None else []
        # Clause minimisation: a literal is redundant if every other literal
        # of its reason clause already occurs in the learnt clause.
        in_learnt = set(learnt)
        minimised = [learnt[0]]
        for q in learnt[1:]:
            clause = self.reason[abs(q)]
            if clause is not None and all(
                p == -q or p in in_learnt for p in clause
            ):
                continue
            minimised.append(q)
        learnt = minimised
        backtrack_level = 0
        if len(learnt) > 1:
            max_index = max(
                range(1, len(learnt)), key=lambda i: self.level[abs(learnt[i])]
            )
            learnt[1], learnt[max_index] = learnt[max_index], learnt[1]
            backtrack_level = self.level[abs(learnt[1])]
        return learnt, backtrack_level

    # ------------------------------------------------------------------
    # main search
    # ------------------------------------------------------------------
    def _pick_branch_var(self) -> Optional[int]:
        # lazy deletion: assigned variables stay in the heap until popped
        while self.order.heap:
            var = self.order.pop()
            if self.assign[var] is None:
                return var
        return None

    def solve(self) -> bool:
        """Decide satisfiability; :meth:`model` is valid afterwards if True.

        May be called repeatedly, interleaved with :meth:`add_clause`; each
        call restarts the search at the root level but keeps all learned
        clauses, activities and saved phases.
        """
        started = time.perf_counter()
        try:
            return self._search()
        finally:
            self.stats.solves += 1
            self.stats.solve_time += time.perf_counter() - started

    def _search(self) -> bool:
        if not self.ok:
            return False
        self._cancel_until(0)
        restart_count = 1
        conflicts_until_restart = self.RESTART_BASE * luby(restart_count)
        conflicts_since_restart = 0
        while True:
            check_deadline()
            conflict = self._propagate()
            if conflict is not None:
                self.stats.conflicts += 1
                conflicts_since_restart += 1
                if self._decision_level() == 0:
                    self.ok = False
                    self._log_refutation()
                    return False
                learnt, back_level = self._analyze(conflict)
                self._cancel_until(back_level)
                self.stats.learned += 1
                if self.proof is not None:
                    # copy: the clause list is mutated in place by watch
                    # maintenance after attachment
                    self.proof.add(list(learnt))
                if len(learnt) == 1:
                    if not self._enqueue(learnt[0], None):
                        self.ok = False
                        self._log_refutation()
                        return False
                else:
                    lbd = len({self.level[abs(q)] for q in learnt})
                    clause = Clause(learnt, learnt=True, lbd=lbd)
                    clause.activity = self.cla_inc
                    self.learnts.append(clause)
                    self._attach(clause)
                    self._enqueue(clause[0], clause)
                self.var_inc /= self.ACTIVITY_DECAY
                self.cla_inc /= self.CLAUSE_DECAY
                if len(self.learnts) >= self.max_learnts:
                    self._reduce_db()
                continue
            if conflicts_since_restart >= conflicts_until_restart:
                self.stats.restarts += 1
                restart_count += 1
                conflicts_until_restart = self.RESTART_BASE * luby(restart_count)
                conflicts_since_restart = 0
                self._cancel_until(0)
                continue
            var = self._pick_branch_var()
            if var is None:
                return True
            self.stats.decisions += 1
            self.trail_lim.append(len(self.trail))
            self._enqueue(var if self.phase[var] else -var, None)

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------
    def model(self) -> Dict[int, bool]:
        """The satisfying assignment found by the last successful solve."""
        return {
            var: bool(self.assign[var])
            for var in range(1, self.num_vars + 1)
            if self.assign[var] is not None
        }


def solve_cnf(cnf: Cnf) -> Optional[Dict[int, bool]]:
    """One-shot convenience wrapper: return a model dict or None."""
    solver = Solver(cnf)
    if solver.solve():
        return solver.model()
    return None


def enumerate_models(
    cnf: Cnf,
    projection: Optional[Iterable[int]] = None,
    limit: Optional[int] = None,
    incremental: bool = True,
    stats_out: Optional[List[SolverStats]] = None,
    proof=None,
    blocking_out: Optional[List[List[int]]] = None,
) -> Iterator[Dict[int, bool]]:
    """Yield models, blocking each found (projected) assignment.

    ``projection`` restricts the blocking clause to the given variables, so
    models are enumerated up to the projection (the standard trick used for
    enumerating relational instances while ignoring Tseitin internals).  An
    *empty* projection means all models agree on the projection, so exactly
    one model is yielded.

    The caller's ``cnf`` is never mutated: blocking clauses live inside the
    solver, so the same formula object can be enumerated again later.  By
    default one incremental solver carries learned clauses, activities and
    saved phases across the whole enumeration; ``incremental=False`` keeps
    the old rebuild-per-model behaviour (on a private copy of the formula)
    as a baseline for benchmarks and differential tests.

    ``stats_out``, if given, receives one per-solve :class:`SolverStats`
    delta per yielded model (useful to observe learned-clause reuse).

    ``blocking_out``, if given, receives every blocking clause pushed into
    the solver, in push order — the certificate layer matches them against
    the yielded models.  ``proof`` attaches a DRAT logger to the solver
    (incremental mode only: a rebuilt-per-model solver has no single trace),
    so an exhausted enumeration leaves a checkable completeness refutation.
    """
    proj = sorted(set(projection)) if projection is not None else None
    if not incremental:
        if proof is not None:
            raise ValueError(
                "proof logging requires incremental enumeration (the "
                "rebuild baseline has no single solver to trace)"
            )
        yield from _enumerate_rebuild(cnf, proj, limit, stats_out, blocking_out)
        return
    solver = Solver(cnf, proof=proof)
    count = 0
    while limit is None or count < limit:
        before = solver.stats.copy()
        if not solver.solve():
            return
        if stats_out is not None:
            stats_out.append(solver.stats - before)
        model = solver.model()
        yield model
        count += 1
        block_vars = proj if proj is not None else sorted(model)
        block = [-(var) if model.get(var, False) else var for var in block_vars]
        if not block:
            return
        if blocking_out is not None:
            blocking_out.append(list(block))
        if not solver.add_clause(block):
            return


def _enumerate_rebuild(
    cnf: Cnf,
    proj: Optional[List[int]],
    limit: Optional[int],
    stats_out: Optional[List[SolverStats]],
    blocking_out: Optional[List[List[int]]] = None,
) -> Iterator[Dict[int, bool]]:
    """Per-model solver rebuild: the pre-incremental enumeration baseline."""
    working = cnf.copy()
    count = 0
    while limit is None or count < limit:
        solver = Solver(working)
        if not solver.solve():
            return
        if stats_out is not None:
            stats_out.append(solver.stats.copy())
        model = solver.model()
        yield model
        count += 1
        block_vars = proj if proj is not None else sorted(model)
        block = [-(var) if model.get(var, False) else var for var in block_vars]
        if not block:
            return
        if blocking_out is not None:
            blocking_out.append(list(block))
        working.add_clause(block)
