"""A CDCL SAT solver.

This is the backend of the bounded relational model finder
(:mod:`repro.kodkod`), playing the role that an off-the-shelf SAT solver
plays underneath Alloy/Kodkod in the paper (§5.1).  It is a conventional
conflict-driven clause-learning solver:

* two-watched-literal unit propagation
* first-UIP conflict analysis with learned-clause minimisation (self-
  subsumption against reason clauses)
* VSIDS-style variable activity with exponential decay and phase saving
* Luby-sequence restarts

The implementation favours clarity over raw speed, but comfortably handles
the tens of thousands of clauses produced by litmus-scale relational
encodings.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Optional

from .cnf import Cnf


class Unsatisfiable(Exception):
    """Raised by helpers that require a model when none exists."""


def luby(index: int) -> int:
    """The Luby restart sequence (1,1,2,1,1,2,4,...), 1-indexed."""
    x = index - 1
    size, seq = 1, 0
    while size < x + 1:
        seq += 1
        size = 2 * size + 1
    while size - 1 != x:
        size = (size - 1) // 2
        seq -= 1
        x %= size
    return 1 << seq


class Solver:
    """CDCL solver over a :class:`~repro.sat.cnf.Cnf` formula."""

    RESTART_BASE = 64
    ACTIVITY_DECAY = 0.95
    ACTIVITY_RESCALE = 1e100

    def __init__(self, cnf: Cnf):
        self.num_vars = cnf.num_vars
        self.assign: List[Optional[bool]] = [None] * (self.num_vars + 1)
        self.level: List[int] = [0] * (self.num_vars + 1)
        self.reason: List[Optional[List[int]]] = [None] * (self.num_vars + 1)
        self.activity: List[float] = [0.0] * (self.num_vars + 1)
        self.phase: List[bool] = [False] * (self.num_vars + 1)
        self.var_inc = 1.0
        self.trail: List[int] = []
        self.trail_lim: List[int] = []
        self.qhead = 0
        self.watches: Dict[int, List[List[int]]] = defaultdict(list)
        self.ok = True
        self.stats = {"decisions": 0, "propagations": 0, "conflicts": 0, "restarts": 0}
        for clause in cnf.clauses:
            self._add_clause(list(clause))
            if not self.ok:
                break

    # ------------------------------------------------------------------
    # clause management
    # ------------------------------------------------------------------
    def _add_clause(self, clause: List[int]) -> None:
        seen: set = set()
        simplified: List[int] = []
        for lit in clause:
            if -lit in seen:
                return  # tautology
            if lit in seen:
                continue
            value = self._value(lit)
            if value is True:
                return  # satisfied at root (construction happens at level 0)
            if value is False:
                continue  # falsified at root; drop literal
            seen.add(lit)
            simplified.append(lit)
        if not simplified:
            self.ok = False
            return
        if len(simplified) == 1:
            if not self._enqueue(simplified[0], None) or self._propagate() is not None:
                self.ok = False
            return
        self._attach(simplified)

    def _attach(self, clause: List[int]) -> None:
        self.watches[clause[0]].append(clause)
        self.watches[clause[1]].append(clause)

    # ------------------------------------------------------------------
    # assignment primitives
    # ------------------------------------------------------------------
    def _value(self, lit: int) -> Optional[bool]:
        value = self.assign[abs(lit)]
        if value is None:
            return None
        return value if lit > 0 else not value

    def _enqueue(self, lit: int, reason: Optional[List[int]]) -> bool:
        value = self._value(lit)
        if value is not None:
            return value
        var = abs(lit)
        self.assign[var] = lit > 0
        self.level[var] = len(self.trail_lim)
        self.reason[var] = reason
        self.trail.append(lit)
        return True

    def _decision_level(self) -> int:
        return len(self.trail_lim)

    def _cancel_until(self, target_level: int) -> None:
        if self._decision_level() <= target_level:
            return
        boundary = self.trail_lim[target_level]
        for lit in reversed(self.trail[boundary:]):
            var = abs(lit)
            self.phase[var] = bool(self.assign[var])  # phase saving
            self.assign[var] = None
            self.reason[var] = None
        del self.trail[boundary:]
        del self.trail_lim[target_level:]
        self.qhead = len(self.trail)

    # ------------------------------------------------------------------
    # propagation
    # ------------------------------------------------------------------
    def _propagate(self) -> Optional[List[int]]:
        """Unit-propagate; return a conflicting clause or None."""
        while self.qhead < len(self.trail):
            lit = self.trail[self.qhead]
            self.qhead += 1
            self.stats["propagations"] += 1
            false_lit = -lit
            watch_list = self.watches[false_lit]
            kept: List[List[int]] = []
            conflict: Optional[List[int]] = None
            index = 0
            while index < len(watch_list):
                clause = watch_list[index]
                index += 1
                if clause[0] == false_lit:
                    clause[0], clause[1] = clause[1], clause[0]
                first = clause[0]
                if self._value(first) is True:
                    kept.append(clause)
                    continue
                moved = False
                for k in range(2, len(clause)):
                    if self._value(clause[k]) is not False:
                        clause[1], clause[k] = clause[k], clause[1]
                        self.watches[clause[1]].append(clause)
                        moved = True
                        break
                if moved:
                    continue
                kept.append(clause)
                if self._value(first) is False:
                    conflict = clause
                    kept.extend(watch_list[index:])
                    break
                self._enqueue(first, clause)
            self.watches[false_lit] = kept
            if conflict is not None:
                return conflict
        return None

    # ------------------------------------------------------------------
    # conflict analysis (first UIP)
    # ------------------------------------------------------------------
    def _bump(self, var: int) -> None:
        self.activity[var] += self.var_inc
        if self.activity[var] > self.ACTIVITY_RESCALE:
            for v in range(1, self.num_vars + 1):
                self.activity[v] *= 1.0 / self.ACTIVITY_RESCALE
            self.var_inc *= 1.0 / self.ACTIVITY_RESCALE

    def _analyze(self, conflict: List[int]) -> tuple[List[int], int]:
        learnt: List[int] = []
        seen = [False] * (self.num_vars + 1)
        counter = 0
        lit: Optional[int] = None
        reason: List[int] = conflict
        trail_index = len(self.trail) - 1
        current_level = self._decision_level()
        while True:
            for q in reason:
                if q == lit:
                    continue  # the propagated literal itself, not an antecedent
                var = abs(q)
                if not seen[var] and self.level[var] > 0:
                    seen[var] = True
                    self._bump(var)
                    if self.level[var] == current_level:
                        counter += 1
                    else:
                        learnt.append(q)
            while not seen[abs(self.trail[trail_index])]:
                trail_index -= 1
            lit = self.trail[trail_index]
            var = abs(lit)
            seen[var] = False
            trail_index -= 1
            counter -= 1
            if counter == 0:
                learnt.insert(0, -lit)
                break
            clause = self.reason[var]
            reason = clause if clause is not None else []
        # Clause minimisation: a literal is redundant if every other literal
        # of its reason clause already occurs in the learnt clause.
        in_learnt = set(learnt)
        minimised = [learnt[0]]
        for q in learnt[1:]:
            clause = self.reason[abs(q)]
            if clause is not None and all(
                p == -q or p in in_learnt for p in clause
            ):
                continue
            minimised.append(q)
        learnt = minimised
        backtrack_level = 0
        if len(learnt) > 1:
            max_index = max(
                range(1, len(learnt)), key=lambda i: self.level[abs(learnt[i])]
            )
            learnt[1], learnt[max_index] = learnt[max_index], learnt[1]
            backtrack_level = self.level[abs(learnt[1])]
        return learnt, backtrack_level

    # ------------------------------------------------------------------
    # main search
    # ------------------------------------------------------------------
    def _pick_branch_var(self) -> Optional[int]:
        best = None
        best_activity = -1.0
        for var in range(1, self.num_vars + 1):
            if self.assign[var] is None and self.activity[var] > best_activity:
                best = var
                best_activity = self.activity[var]
        return best

    def solve(self) -> bool:
        """Decide satisfiability; :meth:`model` is valid afterwards if True."""
        if not self.ok:
            return False
        restart_count = 1
        conflicts_until_restart = self.RESTART_BASE * luby(restart_count)
        conflicts_since_restart = 0
        while True:
            conflict = self._propagate()
            if conflict is not None:
                self.stats["conflicts"] += 1
                conflicts_since_restart += 1
                if self._decision_level() == 0:
                    self.ok = False
                    return False
                learnt, back_level = self._analyze(conflict)
                self._cancel_until(back_level)
                if len(learnt) == 1:
                    if not self._enqueue(learnt[0], None):
                        self.ok = False
                        return False
                else:
                    self._attach(learnt)
                    self._enqueue(learnt[0], learnt)
                self.var_inc /= self.ACTIVITY_DECAY
                continue
            if conflicts_since_restart >= conflicts_until_restart:
                self.stats["restarts"] += 1
                restart_count += 1
                conflicts_until_restart = self.RESTART_BASE * luby(restart_count)
                conflicts_since_restart = 0
                self._cancel_until(0)
                continue
            var = self._pick_branch_var()
            if var is None:
                return True
            self.stats["decisions"] += 1
            self.trail_lim.append(len(self.trail))
            self._enqueue(var if self.phase[var] else -var, None)

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------
    def model(self) -> Dict[int, bool]:
        """The satisfying assignment found by the last successful solve."""
        return {
            var: bool(self.assign[var])
            for var in range(1, self.num_vars + 1)
            if self.assign[var] is not None
        }


def solve_cnf(cnf: Cnf) -> Optional[Dict[int, bool]]:
    """One-shot convenience wrapper: return a model dict or None."""
    solver = Solver(cnf)
    if solver.solve():
        return solver.model()
    return None


def enumerate_models(
    cnf: Cnf, projection: Optional[Iterable[int]] = None, limit: Optional[int] = None
):
    """Yield models, blocking each found (projected) assignment.

    ``projection`` restricts the blocking clause to the given variables, so
    models are enumerated up to the projection (the standard trick used for
    enumerating relational instances while ignoring Tseitin internals).
    """
    proj = sorted(set(projection)) if projection is not None else None
    count = 0
    while True:
        if limit is not None and count >= limit:
            return
        solver = Solver(cnf)
        if not solver.solve():
            return
        model = solver.model()
        yield model
        count += 1
        block_vars = proj if proj is not None else sorted(model)
        cnf.add_clause(
            [-(var) if model.get(var, False) else var for var in block_vars]
        )
