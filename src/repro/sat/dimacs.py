"""DIMACS CNF serialisation, for interoperability and debugging.

The reader is a tokenizing parser: clauses are sequences of non-zero
integer literals terminated by ``0``, and may span lines or share a line,
exactly as the DIMACS grammar allows.  Blank lines and ``c`` comments are
skipped anywhere.  Malformed input — a non-integer token, a final clause
missing its ``0`` terminator, a duplicate problem line — raises
:class:`ValueError` with the offending token and line number rather than
silently mis-parsing.

``write_dimacs_clauses`` serialises a bare ``(num_vars, clauses)`` pair,
which is what the certificate subsystem needs to emit the companion CNF
next to a DRAT trace (external checkers like ``drat-trim`` take the
formula and the proof as separate files).
"""

from __future__ import annotations

from typing import Iterable, Sequence, TextIO

from .cnf import Cnf


def write_dimacs_clauses(
    num_vars: int,
    clauses: Sequence[Sequence[int]],
    stream: TextIO,
    comment: str = "",
) -> None:
    """Write a bare clause list in DIMACS format (DRAT companion CNF)."""
    if comment:
        for line in comment.splitlines():
            stream.write(f"c {line}\n")
    stream.write(f"p cnf {num_vars} {len(clauses)}\n")
    for clause in clauses:
        stream.write(" ".join(map(str, clause)) + " 0\n")


def write_dimacs(cnf: Cnf, stream: TextIO, comment: str = "") -> None:
    """Write ``cnf`` in DIMACS format to ``stream``."""
    write_dimacs_clauses(cnf.num_vars, cnf.clauses, stream, comment=comment)


def read_dimacs(stream: TextIO) -> Cnf:
    """Parse a DIMACS CNF file into a :class:`Cnf`.

    Tolerates comments, blank lines, clauses spanning several lines and
    several clauses per line.  Raises :class:`ValueError` on non-integer
    tokens, on a final clause missing its ``0`` terminator, and on a
    malformed or repeated problem line.
    """
    cnf = Cnf()
    seen_problem_line = False
    current: list = []
    for lineno, raw in enumerate(stream, start=1):
        line = raw.strip()
        if not line or line.startswith("c"):
            continue
        if line.startswith("p"):
            if seen_problem_line:
                raise ValueError(f"line {lineno}: duplicate problem line")
            parts = line.split()
            if len(parts) != 4 or parts[1] != "cnf":
                raise ValueError(
                    f"line {lineno}: malformed problem line: {line!r}"
                )
            try:
                declared_vars = int(parts[2])
                int(parts[3])
            except ValueError:
                raise ValueError(
                    f"line {lineno}: malformed problem line: {line!r}"
                ) from None
            while cnf.num_vars < declared_vars:
                cnf.new_var()
            seen_problem_line = True
            continue
        for token in line.split():
            try:
                lit = int(token)
            except ValueError:
                raise ValueError(
                    f"line {lineno}: non-integer token {token!r} in clause"
                ) from None
            if lit == 0:
                _add_parsed_clause(cnf, current)
                current = []
            else:
                current.append(lit)
    if current:
        raise ValueError(
            "unexpected end of input: final clause "
            f"{current} is missing its terminating 0"
        )
    return cnf


def _add_parsed_clause(cnf: Cnf, lits: Iterable[int]) -> None:
    lits = list(lits)
    if not lits:
        return
    needed = max(abs(l) for l in lits)
    while cnf.num_vars < needed:
        cnf.new_var()
    cnf.add_clause(lits)
