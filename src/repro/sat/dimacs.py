"""DIMACS CNF serialisation, for interoperability and debugging."""

from __future__ import annotations

from typing import TextIO

from .cnf import Cnf


def write_dimacs(cnf: Cnf, stream: TextIO, comment: str = "") -> None:
    """Write ``cnf`` in DIMACS format to ``stream``."""
    if comment:
        for line in comment.splitlines():
            stream.write(f"c {line}\n")
    stream.write(f"p cnf {cnf.num_vars} {len(cnf.clauses)}\n")
    for clause in cnf.clauses:
        stream.write(" ".join(map(str, clause)) + " 0\n")


def read_dimacs(stream: TextIO) -> Cnf:
    """Parse a DIMACS CNF file into a :class:`Cnf`."""
    cnf = Cnf()
    declared_vars = 0
    for raw in stream:
        line = raw.strip()
        if not line or line.startswith("c"):
            continue
        if line.startswith("p"):
            parts = line.split()
            if len(parts) != 4 or parts[1] != "cnf":
                raise ValueError(f"malformed problem line: {line!r}")
            declared_vars = int(parts[2])
            while cnf.num_vars < declared_vars:
                cnf.new_var()
            continue
        lits = [int(tok) for tok in line.split()]
        if lits and lits[-1] == 0:
            lits = lits[:-1]
        if not lits:
            continue
        needed = max(abs(l) for l in lits)
        while cnf.num_vars < needed:
            cnf.new_var()
        cnf.add_clause(lits)
    return cnf
