"""The cross-engine oracle: run one test many ways, compare everything.

A :class:`Check` names two engine configurations and how to compare
their results — ``verdict`` (allowed/forbidden agreement), ``outcomes``
(full outcome-*set* equality; the strong comparison that catches engines
agreeing on a verdict for different reasons), or ``subset`` (metamorphic
containment, e.g. every SC outcome must be a TSO outcome).

The oracle batches every (test, engine) pair through one
:class:`~repro.litmus.session.Session`, so fuzzing inherits the worker
pool, per-test timeouts, and failure isolation for free.  A task that
times out or errors makes its checks *undecided*, never a discrepancy:
the fuzzer hunts for engines that disagree, not for engines that are
slow.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..litmus.config import RunConfig, freeze_opts
from ..litmus.runner import LitmusResult, decide
from ..litmus.session import Session
from ..litmus.test import LitmusTest
from ..operational import supports_program
from ..registry import resolve_engine, resolve_model


@dataclass(frozen=True)
class EngineSpec:
    """One way of deciding a litmus test: model + engine + options."""

    label: str
    model: str = "ptx"
    engine: str = "enumerative"
    search_opts: Tuple[Tuple[str, object], ...] = ()
    certify: bool = False

    def __post_init__(self):
        # one uniform unknown-name error, at spec construction rather
        # than deep inside a batched oracle run
        resolve_model(self.model)
        resolve_engine(self.engine)

    def config(self, base: Optional[RunConfig] = None) -> RunConfig:
        """This spec as a run config (timeout inherited from ``base``)."""
        base = base if base is not None else RunConfig()
        return base.evolve(
            model=self.model,
            engine=self.engine,
            search_opts=self.search_opts,
            certify=self.certify,
        )


@dataclass(frozen=True)
class Check:
    """Compare two engine specs on one test.

    ``compare``:

    * ``"outcomes"`` — the full outcome sets must be equal;
    * ``"verdict"`` — the allowed/forbidden answers must agree;
    * ``"subset"`` — every left outcome must be a right outcome;
    * ``"contained"`` — every left *concrete observation* must be a
      right one (outcomes concretized through
      :func:`repro.zoo.engine.concrete_observations` first, so models
      with partial and total coherence witnesses compare soundly).

    ``requires_operational`` gates the check on the baseline machines
    being able to execute the program (no CTA barriers).
    """

    kind: str
    left: EngineSpec
    right: EngineSpec
    compare: str = "outcomes"
    requires_operational: bool = False

    def applies(self, test: LitmusTest) -> bool:
        if self.requires_operational:
            return supports_program(test.program)
        return True


@dataclass(frozen=True)
class Discrepancy:
    """Two engines disagreed on one test."""

    kind: str
    test: LitmusTest
    left_label: str
    right_label: str
    detail: str


@dataclass(frozen=True)
class CaseVerdict:
    """The oracle's full judgement of one test."""

    test: LitmusTest
    discrepancies: Tuple[Discrepancy, ...] = ()
    #: check kinds that could not be decided (engine timeout/error)
    undecided: Tuple[str, ...] = ()
    #: check kinds that ran and agreed
    agreed: Tuple[str, ...] = ()
    #: ``(check kind, detail)`` for checks undecided by an engine *crash*
    #: (status ``error``, not ``timeout``) — the shrinker treats these as
    #: blockers to report, never as "discrepancy gone"
    errors: Tuple[Tuple[str, str], ...] = ()
    #: the reference (ptx/enumerative) run, when the battery produced
    #: one — the coverage extractor reads verdict and enumeration
    #: counters from here without re-running anything
    primary: Optional[LitmusResult] = None

    @property
    def clean(self) -> bool:
        return not self.discrepancies


def containment_checks() -> Tuple[Check, ...]:
    """One cross-model check per declared zoo containment claim.

    Every ``A ⊑ B`` claim in the zoo (:func:`repro.zoo.models.
    containment_claims`) derives a ``contained`` check named
    ``A-within-B``: each model registered with a claim is fuzzed against
    its weaker neighbour for free, generalizing the original
    hand-written SC⊆TSO check to the whole declared order.
    """
    from ..zoo.models import containment_claims

    return tuple(
        Check(
            kind=f"{claim.stronger}-within-{claim.weaker}",
            left=EngineSpec(
                f"{claim.stronger}/enumerative", model=claim.stronger
            ),
            right=EngineSpec(
                f"{claim.weaker}/enumerative", model=claim.weaker
            ),
            compare="contained",
        )
        for claim in containment_claims()
    )


def default_checks(perturb: Optional[str] = None) -> Tuple[Check, ...]:
    """The standard differential battery: the hand-written engine
    comparisons plus the zoo-derived containment checks.

    ``perturb`` names a PTX axiom to skip on the *enumerative* side
    (``skip_axioms``), deliberately breaking one engine — the negative
    control proving the harness actually detects disagreement.
    """
    opts: Tuple[Tuple[str, object], ...] = ()
    label = "ptx/enumerative"
    if perturb is not None:
        from ..ptx import spec

        if perturb not in spec.AXIOMS:
            # an unknown name would silently skip nothing and the
            # negative control would pass vacuously
            raise ValueError(
                f"unknown axiom {perturb!r}; have {sorted(spec.AXIOMS)}"
            )
        opts = freeze_opts({"skip_axioms": (perturb,)})
        label = f"ptx/enumerative[skip {perturb}]"
    enum = EngineSpec(label, search_opts=opts)
    symbolic = EngineSpec("ptx/symbolic", engine="symbolic")
    symbolic_enum = EngineSpec("ptx/symbolic-enum", engine="symbolic-enum")
    rf_check = EngineSpec("ptx/rf-check", engine="rf-check")
    sc = EngineSpec("sc/enumerative", model="sc")
    sc_op = EngineSpec("sc/operational", model="sc-op")
    tso = EngineSpec("tso/enumerative", model="tso")
    tso_op = EngineSpec("tso/operational", model="tso-op")
    return (
        Check("ptx-verdict", enum, symbolic, compare="verdict"),
        Check("ptx-outcomes", enum, symbolic_enum, compare="outcomes"),
        # the saturation engine must reproduce the enumerative outcome
        # set byte for byte; under a perturbed enumerative side this
        # doubles as a negative control (the clean rf-check engine
        # should disagree with the broken reference)
        Check("ptx-rf-outcomes", enum, rf_check, compare="outcomes"),
        Check(
            "sc-operational", sc, sc_op,
            compare="outcomes", requires_operational=True,
        ),
        Check(
            "tso-operational", tso, tso_op,
            compare="outcomes", requires_operational=True,
        ),
        # the declared zoo containments (sc-within-tso and friends):
        # purely axiomatic, so they run on barrier programs too
        *containment_checks(),
    )


def _describe_outcomes(
    left: frozenset, right: frozenset
) -> str:
    only_left = sorted(map(repr, left - right))
    only_right = sorted(map(repr, right - left))
    parts = []
    if only_left:
        parts.append(f"left-only: {', '.join(only_left)}")
    if only_right:
        parts.append(f"right-only: {', '.join(only_right)}")
    return "; ".join(parts) or "outcome sets differ"


def compare_results(
    check: Check, left: LitmusResult, right: LitmusResult
) -> Optional[str]:
    """The discrepancy detail for one check, or None on agreement."""
    if check.compare == "verdict":
        if left.observed != right.observed:
            return (
                f"{check.left.label} says "
                f"{'allowed' if left.observed else 'forbidden'}, "
                f"{check.right.label} says "
                f"{'allowed' if right.observed else 'forbidden'}"
            )
        return None
    if check.compare == "subset":
        extra = left.outcomes - right.outcomes
        if extra:
            return (
                f"{check.left.label} outcomes not contained in "
                f"{check.right.label}: {sorted(map(repr, extra))}"
            )
        return None
    if check.compare == "contained":
        from ..zoo.engine import concrete_observations

        extra = (
            concrete_observations(left.outcomes)
            - concrete_observations(right.outcomes)
        )
        if extra:
            return (
                f"{check.left.label} observations not contained in "
                f"{check.right.label}: {sorted(map(repr, extra))}"
            )
        return None
    if check.compare == "outcomes":
        if left.outcomes != right.outcomes:
            return _describe_outcomes(left.outcomes, right.outcomes)
        # engines with equal outcome sets must also read the condition
        # identically; a mismatch here is a condition-evaluation bug
        if left.observed != right.observed:
            return (
                "equal outcome sets but different verdicts "
                f"({check.left.label}: {left.observed}, "
                f"{check.right.label}: {right.observed})"
            )
        return None
    raise ValueError(f"unknown comparison {check.compare!r}")


class Oracle:
    """Evaluates a batch of tests against a battery of checks."""

    def __init__(
        self,
        checks: Optional[Sequence[Check]] = None,
        base_config: Optional[RunConfig] = None,
    ):
        self.checks = tuple(checks if checks is not None else default_checks())
        self.base_config = base_config

    def _specs_for(self, test: LitmusTest) -> List[EngineSpec]:
        """Unique engine specs needed by the checks that apply to ``test``."""
        specs: List[EngineSpec] = []
        for check in self.checks:
            if not check.applies(test):
                continue
            for spec in (check.left, check.right):
                if spec not in specs:
                    specs.append(spec)
        return specs

    def evaluate(
        self, tests: Sequence[LitmusTest], session: Session
    ) -> List[CaseVerdict]:
        """Judge every test; engine runs are batched through ``session``."""
        base = self.base_config or session.config
        plan: List[Tuple[int, EngineSpec]] = []
        for index, test in enumerate(tests):
            for spec in self._specs_for(test):
                plan.append((index, spec))
        tasks = [(tests[index], spec.config(base)) for index, spec in plan]
        results = session.run_tasks(tasks)
        by_case: Dict[int, Dict[EngineSpec, LitmusResult]] = {}
        for (index, spec), result in zip(plan, results):
            by_case.setdefault(index, {})[spec] = result
        return [
            self._judge(test, by_case.get(index, {}))
            for index, test in enumerate(tests)
        ]

    def evaluate_one(self, test: LitmusTest) -> CaseVerdict:
        """Judge one test in-process (no session; the shrinker's path)."""
        base = self.base_config or RunConfig()
        produced: Dict[EngineSpec, LitmusResult] = {}
        for spec in self._specs_for(test):
            config = spec.config(base)
            try:
                produced[spec] = decide(test, config)
            except Exception as exc:  # noqa: BLE001 — undecided, not fatal
                produced[spec] = LitmusResult(
                    test=test,
                    model=config.model,
                    observed=False,
                    outcomes=frozenset(),
                    status="error",
                    detail=f"{type(exc).__name__}: {exc}",
                )
        return self._judge(test, produced)

    def _judge(
        self, test: LitmusTest, produced: Dict[EngineSpec, LitmusResult]
    ) -> CaseVerdict:
        discrepancies: List[Discrepancy] = []
        undecided: List[str] = []
        agreed: List[str] = []
        errors: List[Tuple[str, str]] = []
        for check in self.checks:
            if not check.applies(test):
                continue
            left = produced.get(check.left)
            right = produced.get(check.right)
            if left is None or right is None:
                undecided.append(check.kind)
                continue
            if left.status != "ok" or right.status != "ok":
                undecided.append(check.kind)
                # a *crash* is recorded separately from a timeout: the
                # shrinker must not mistake "the engine blew up" for
                # "the discrepancy no longer reproduces"
                for side, result in (("left", left), ("right", right)):
                    if result.status == "error":
                        errors.append(
                            (check.kind, f"{side}: {result.detail}")
                        )
                continue
            detail = compare_results(check, left, right)
            if detail is None:
                agreed.append(check.kind)
            else:
                discrepancies.append(
                    Discrepancy(
                        kind=check.kind,
                        test=test,
                        left_label=check.left.label,
                        right_label=check.right.label,
                        detail=detail,
                    )
                )
        primary = None
        for spec, result in produced.items():
            if spec.model != "ptx" or spec.engine != "enumerative":
                continue
            if result.status == "ok":
                primary = result
                break
        return CaseVerdict(
            test=test,
            discrepancies=tuple(discrepancies),
            undecided=tuple(undecided),
            agreed=tuple(agreed),
            errors=tuple(errors),
            primary=primary,
        )


def check_test(
    test: LitmusTest,
    checks: Optional[Sequence[Check]] = None,
    base_config: Optional[RunConfig] = None,
) -> CaseVerdict:
    """One-shot oracle evaluation of a single test (in-process)."""
    return Oracle(checks, base_config).evaluate_one(test)
