"""The coverage-guided fuzzing farm behind ``ptxmm farm``.

Where ``ptxmm fuzz`` explores blindly, the farm closes the loop: every
round it regenerates its :class:`~repro.fuzz.gen.GenBias` from the live
:class:`~repro.fuzz.coverage.CoverageMap`, so generation is steered
toward annotation combinations, cycle edges, layouts, and axiom-failure
branches that no case has exhibited yet.  Rounds are the determinism
unit — bias only changes at round boundaries, so every case is a pure
function of ``(seed, index, coverage-at-round-start)`` and any round is
replayable from its checkpoint.

The farm checkpoints after every round (atomic write-then-rename): the
coverage map, the artifact dedup set, the corpus candidates, and the
next stream index.  Resuming continues the identical case stream, so an
interrupted-then-resumed farm converges to the same coverage map and
dedup set as an uninterrupted run with the same seed — the property
nightly CI relies on to accumulate coverage across sessions.

A count budget is the *total stream length*: ``run_farm`` with
``budget=1000`` processes indices 0..999 however many sessions that
takes.  A wall-clock budget bounds the current invocation only.

Cases that exhibit a new feature become corpus *candidates*;
:func:`write_corpus` distills them (greedy set cover over the coverage
frontier) into a committed regression corpus directory with a
deterministic ``MANIFEST.json``.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..litmus.config import RunConfig
from ..litmus.serialize import canonical_json, test_to_dict, test_to_litmus
from ..litmus.session import Session
from ..litmus.test import LitmusTest
from .coverage import (
    CoverageMap,
    bias_from_coverage,
    case_features,
    distill,
    result_features,
)
from .gen import FuzzCase, GenBias, generate_case
from .harness import (
    FoundDiscrepancy,
    FuzzBudget,
    FuzzStats,
    canonical_test_hash,
    write_artifact,
    _shrink_predicate,
)
from .oracle import CaseVerdict, Check, EngineSpec, Oracle, default_checks
from .shrink import shrink

#: serialization shape of the farm checkpoint
FARM_SCHEMA = 1


@dataclass(frozen=True)
class FarmConfig:
    """Everything that shapes a farm run (and must match on resume)."""

    seed: int
    budget: FuzzBudget
    jobs: int = 1
    timeout: Optional[float] = 20.0
    #: cases per round — the steering granularity: bias refreshes only
    #: at round boundaries so rounds replay deterministically
    round_size: int = 64
    #: steer generation from the live coverage map (False = blind farm)
    steer: bool = True
    #: weight multiplier for choices whose feature is uncovered
    boost: float = 8.0
    perturb: Optional[str] = None
    artifact_dir: Optional[str] = None
    max_found: int = 10
    shrink_attempts: int = 2000
    #: pre-seed coverage and candidates from the documented suite (at
    #: negative stream indices), so RMW/dependency/barrier shapes the
    #: generator cannot emit still reach the corpus
    seed_corpus: bool = True
    checkpoint: Optional[str] = None
    #: relation kernel for every engine run (verdict-neutral, so it is
    #: deliberately absent from the resume fingerprint)
    kernel: str = "bit"

    def fingerprint(self) -> Dict[str, object]:
        """The resume-compatibility echo stored in checkpoints."""
        return {
            "seed": self.seed,
            "steer": self.steer,
            "boost": self.boost,
            "round_size": self.round_size,
            "perturb": self.perturb,
            "seed_corpus": self.seed_corpus,
        }


@dataclass
class FarmReport:
    """Everything one farm invocation produced (or resumed into)."""

    config: FarmConfig
    stats: FuzzStats
    coverage: CoverageMap
    found: List[FoundDiscrepancy] = field(default_factory=list)
    #: test name -> candidate record (feature list + serialized test)
    candidates: Dict[str, Dict] = field(default_factory=dict)
    #: (check kind, canonical hash) pairs of deduped shrunk repros
    dedup: Dict[Tuple[str, str], Optional[str]] = field(default_factory=dict)
    rounds: int = 0
    next_index: int = 0
    found_total: int = 0
    elapsed: float = 0.0

    @property
    def ok(self) -> bool:
        return self.found_total == 0

    def distilled(self) -> List[str]:
        """Candidate names of the greedy minimal frontier-preserving set."""
        return distill({
            name: record["features"]
            for name, record in self.candidates.items()
        })


def _stats_to_dict(stats: FuzzStats) -> Dict:
    return {
        "generated": stats.generated,
        "checks_run": stats.checks_run,
        "undecided": stats.undecided,
        "discrepancies": stats.discrepancies,
        "deduped": stats.deduped,
        "by_check": dict(sorted(stats.by_check.items())),
    }


def _stats_from_dict(data: Dict) -> FuzzStats:
    stats = FuzzStats()
    stats.generated = int(data.get("generated", 0))
    stats.checks_run = int(data.get("checks_run", 0))
    stats.undecided = int(data.get("undecided", 0))
    stats.discrepancies = int(data.get("discrepancies", 0))
    stats.deduped = int(data.get("deduped", 0))
    stats.by_check = {
        str(k): int(v) for k, v in dict(data.get("by_check", {})).items()
    }
    return stats


def save_checkpoint(path: str, report: FarmReport) -> None:
    """Atomically persist the farm state (write temp, then rename)."""
    payload = {
        "schema": FARM_SCHEMA,
        "config": report.config.fingerprint(),
        "next_index": report.next_index,
        "rounds": report.rounds,
        "found_total": report.found_total,
        "coverage": report.coverage.to_dict(),
        "dedup": sorted(
            [kind, digest, location]
            for (kind, digest), location in report.dedup.items()
        ),
        "candidates": {
            name: {
                "index": record["index"],
                "cycle": record.get("cycle"),
                "features": sorted(record["features"]),
                "test": record["test"],
            }
            for name, record in sorted(report.candidates.items())
        },
        "stats": _stats_to_dict(report.stats),
    }
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    temp = target.with_name(target.name + ".tmp")
    temp.write_text(canonical_json(payload) + "\n")
    os.replace(temp, target)


def load_checkpoint(path: str, config: FarmConfig) -> FarmReport:
    """Rebuild farm state from a checkpoint, validating compatibility."""
    payload = json.loads(Path(path).read_text())
    if payload.get("schema") != FARM_SCHEMA:
        raise ValueError(
            f"unsupported farm checkpoint schema {payload.get('schema')!r} "
            f"(this build reads v{FARM_SCHEMA})"
        )
    echo = payload.get("config", {})
    expected = config.fingerprint()
    if echo != expected:
        drift = sorted(
            key for key in set(echo) | set(expected)
            if echo.get(key) != expected.get(key)
        )
        raise ValueError(
            f"checkpoint {path} was produced by an incompatible farm "
            f"configuration (differs on: {', '.join(drift)}); resume with "
            "matching options or start a fresh checkpoint"
        )
    report = FarmReport(
        config=config,
        stats=_stats_from_dict(payload.get("stats", {})),
        coverage=CoverageMap.from_dict(payload["coverage"]),
        rounds=int(payload.get("rounds", 0)),
        next_index=int(payload.get("next_index", 0)),
        found_total=int(payload.get("found_total", 0)),
    )
    for kind, digest, location in payload.get("dedup", []):
        report.dedup[(str(kind), str(digest))] = location
    for name, record in payload.get("candidates", {}).items():
        report.candidates[str(name)] = {
            "index": int(record["index"]),
            "cycle": record.get("cycle"),
            "features": frozenset(record["features"]),
            "test": record["test"],
        }
    return report


def _case_verdict_features(
    case_or_test, cycle: Optional[str], verdict: Optional[CaseVerdict]
) -> frozenset:
    """All features one evaluated case exhibits (static + dynamic)."""
    test = case_or_test.test if isinstance(case_or_test, FuzzCase) else case_or_test
    features = set(case_features(test, cycle))
    if verdict is not None:
        if verdict.primary is not None:
            features |= result_features(verdict.primary)
        for discrepancy in verdict.discrepancies:
            features.add(f"discrepancy:{discrepancy.kind}")
    return frozenset(features)


def run_farm(
    config: FarmConfig,
    checks: Optional[Sequence[Check]] = None,
    progress: Optional[Callable[[FarmReport], None]] = None,
) -> FarmReport:
    """Run (or resume) the coverage-guided farm; see the module docstring.

    ``checks=None`` runs the full differential battery of
    :func:`~repro.fuzz.oracle.default_checks`; an explicit empty
    sequence runs coverage-only rounds — just the reference
    ptx/enumerative engine, no cross-checking — which is what the
    steering benchmark uses to time the coverage loop itself.
    ``progress`` is called after each round's checkpoint; an exception
    it raises aborts the run *after* the round was durably saved, which
    the resume tests use to simulate kills.
    """
    battery = tuple(checks) if checks is not None else default_checks(config.perturb)
    oracle = Oracle(
        battery,
        base_config=RunConfig(timeout=config.timeout, kernel=config.kernel),
    )
    primary_spec = EngineSpec("ptx/enumerative")

    if config.checkpoint is not None and Path(config.checkpoint).exists():
        report = load_checkpoint(config.checkpoint, config)
    else:
        report = FarmReport(
            config=config, stats=FuzzStats(), coverage=CoverageMap()
        )

    started = time.perf_counter()
    directory = (
        Path(config.artifact_dir) if config.artifact_dir is not None else None
    )
    session_config = RunConfig(
        jobs=config.jobs, timeout=config.timeout, kernel=config.kernel
    )

    def evaluate(
        session: Session, tests: List[LitmusTest]
    ) -> List[CaseVerdict]:
        if battery:
            return oracle.evaluate(tests, session)
        # coverage-only mode: one reference run per case, no comparisons
        tasks = [
            (test, primary_spec.config(oracle.base_config)) for test in tests
        ]
        results = session.run_tasks(tasks)
        return [
            CaseVerdict(
                test=test,
                primary=result if result.status == "ok" else None,
            )
            for test, result in zip(tests, results)
        ]

    def observe_case(case_or_test, cycle, index, verdict) -> None:
        features = _case_verdict_features(case_or_test, cycle, verdict)
        new = report.coverage.observe(features, index)
        if new:
            test = (
                case_or_test.test
                if isinstance(case_or_test, FuzzCase)
                else case_or_test
            )
            report.candidates[test.name] = {
                "index": index,
                "cycle": cycle,
                "features": features,
                "test": test_to_dict(test),
            }

    def handle_discrepancies(case: FuzzCase, verdict: CaseVerdict) -> None:
        for discrepancy in verdict.discrepancies:
            if report.found_total >= config.max_found:
                return
            shrunk = shrink(
                case.test,
                _shrink_predicate(oracle, discrepancy.kind),
                max_attempts=config.shrink_attempts,
            )
            dedup_key = (
                discrepancy.kind, canonical_test_hash(shrunk.test)
            )
            if dedup_key in report.dedup:
                report.stats.deduped += 1
                continue
            location = None
            if directory is not None:
                location = str(
                    write_artifact(directory, case, discrepancy, shrunk)
                )
            report.dedup[dedup_key] = location
            report.found.append(
                FoundDiscrepancy(
                    case=case,
                    discrepancy=discrepancy,
                    shrunk=shrunk,
                    artifact_dir=location,
                )
            )
            report.found_total += 1

    with Session(session_config) as session:
        if config.seed_corpus and report.rounds == 0:
            # the documented suite exercises RMWs, dependencies, and
            # barriers — shapes outside the generator's vocabulary;
            # negative indices keep them out of the fuzz stream's
            # first-hit accounting
            from ..litmus.suite import SUITE

            suite_tests = list(SUITE)
            verdicts = evaluate(session, suite_tests)
            for position, (test, verdict) in enumerate(
                zip(suite_tests, verdicts)
            ):
                observe_case(test, None, -(position + 1), verdict)

        while True:
            if config.budget.count is not None:
                remaining = config.budget.count - report.next_index
                if remaining <= 0:
                    break
                batch = min(config.round_size, remaining)
            else:
                if time.perf_counter() - started >= config.budget.seconds:
                    break
                batch = config.round_size
            if report.found_total >= config.max_found:
                break

            bias: Optional[GenBias] = None
            if config.steer and len(report.coverage):
                bias = bias_from_coverage(report.coverage, config.boost)
            cases = [
                generate_case(config.seed, i, bias)
                for i in range(report.next_index, report.next_index + batch)
            ]
            verdicts = evaluate(session, [case.test for case in cases])
            for case, verdict in zip(cases, verdicts):
                report.stats.record(verdict)
                observe_case(case, case.cycle, case.index, verdict)
                handle_discrepancies(case, verdict)
            report.next_index += batch
            report.rounds += 1
            if config.checkpoint is not None:
                save_checkpoint(config.checkpoint, report)
            if progress is not None:
                progress(report)

    report.elapsed = time.perf_counter() - started
    return report


def write_corpus(
    report: FarmReport,
    directory: str,
    extra_tests: Sequence[LitmusTest] = (),
) -> List[str]:
    """Distill the farm's candidates into a regression corpus directory.

    Emits one ``<name>.litmus`` per selected test plus a deterministic
    ``MANIFEST.json`` recording, per test, its canonical-form hash and
    the features it contributes, and the digest of the preserved
    frontier.  ``extra_tests`` (e.g. hand-pinned axiom probes) are
    always included, after the distilled selection.

    The recorded hash is of the *parsed-back* file: litmus text cannot
    carry ``search_opts`` (kept in the manifest instead and re-applied
    by the loader) and the parser re-infers grid shape padding, so
    hashing the round-tripped form is what lets the loader verify the
    committed files byte-for-byte without false staleness.
    """
    from ..litmus.parser import parse_litmus
    from ..litmus.serialize import _search_opts_to_obj, test_from_dict

    selected = report.distilled()
    target = Path(directory)
    target.mkdir(parents=True, exist_ok=True)
    manifest: Dict[str, Dict] = {}
    frontier: set = set()

    def emit(test: LitmusTest, features, origin: str) -> None:
        safe = test.name.replace("/", "_")
        text = test_to_litmus(test)
        (target / f"{safe}.litmus").write_text(text)
        manifest[test.name] = {
            "file": f"{safe}.litmus",
            "hash": canonical_test_hash(parse_litmus(text)),
            "origin": origin,
            "features": sorted(features),
        }
        if test.search_opts:
            manifest[test.name]["search_opts"] = _search_opts_to_obj(
                dict(test.search_opts)
            )
        frontier.update(features)

    for name in selected:
        record = report.candidates[name]
        emit(
            test_from_dict(record["test"]), record["features"],
            f"distilled (seed {report.config.seed}, index {record['index']})",
        )
    for test in extra_tests:
        emit(test, case_features(test), "pinned probe")

    payload = {
        "schema": FARM_SCHEMA,
        "seed": report.config.seed,
        "frontier_size": len(frontier),
        "coverage_digest": report.coverage.digest(),
        "tests": dict(sorted(manifest.items())),
    }
    (target / "MANIFEST.json").write_text(canonical_json(payload) + "\n")
    # a probe can share a name with a distilled candidate (the suite
    # seeds); the later emit wins the manifest entry, so dedup here too
    return list(
        dict.fromkeys(selected + [t.name for t in extra_tests])
    )
