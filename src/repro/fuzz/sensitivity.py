"""Axiom-ablation sensitivity: which corpus shapes detect which axiom.

The paper's Figure 17 validates the model empirically: remove any one
axiom and some litmus family must notice.  This module is the
generalization of the fuzzer's single-axiom ``--perturb`` negative
control into a systematic matrix — for every PTX axiom × corpus shape,
re-run the enumerative search with that axiom skipped and record which
of two channels detects the ablation:

* **outcomes** — the allowed outcome set changes (the classic Figure 17
  signal; also recorded as a ``verdict`` channel when the documented
  condition flips between allowed and forbidden);
* **witnesses** — the set of consistent executions changes even though
  every outcome survives.  This channel exists because some axioms are
  outcome-invisible on this fragment: a FenceSC-violating sc
  orientation whose cause path contains an ``obs`` edge also violates
  Causality, so dropping FenceSC alone never flips an outcome — but it
  does admit new witness executions, which the digest of the execution
  set catches.

The matrix is emitted as byte-deterministic JSON (canonical form,
sorted keys) and pinned as a committed golden: every axiom must stay
detected by at least one corpus shape, or the corpus has lost its
sensitivity and the golden test names the blind spot.
"""

from __future__ import annotations

import hashlib
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..core.scopes import Scope, device_thread
from ..litmus.serialize import canonical_json
from ..litmus.test import LitmusTest, make_test
from ..ptx import spec
from ..ptx.events import Sem
from ..ptx.program import ProgramBuilder
from ..search.ptx_search import candidate_executions

#: serialization shape of the sensitivity matrix payload
SENSITIVITY_SCHEMA = 1

#: the detection channels, in reporting order
CHANNELS = ("outcomes", "verdict", "witnesses")


def _execution_key(candidate) -> Tuple:
    """A canonical, hashable identity for one consistent execution."""
    execution = candidate.execution
    return (
        tuple(sorted(
            (a.eid, b.eid) for a, b in execution.relation("rf")
        )),
        tuple(sorted(
            (a.eid, b.eid) for a, b in execution.relation("co")
        )),
        tuple(sorted(
            (a.eid, b.eid) for a, b in execution.relation("sc")
        )),
        tuple(sorted(candidate.valuation.items())),
    )


def summarize_shape(
    test: LitmusTest, skip_axioms: Tuple[str, ...] = ()
) -> Tuple[FrozenSet, str, bool]:
    """One enumeration pass over a test: (outcomes, witness digest,
    condition observed).

    The witness digest hashes the canonical identities of *all*
    consistent executions, so it changes whenever an ablation admits or
    removes a witness — even if every observable outcome survives.
    """
    speculation = tuple(
        test.search_opts.get("speculation_values", ())
    )
    outcomes = set()
    keys = set()
    for candidate in candidate_executions(
        test.program,
        skip_axioms=skip_axioms,
        speculation_values=speculation,
    ):
        outcomes.add(candidate.outcome())
        keys.add(_execution_key(candidate))
    digest = hashlib.sha256(
        canonical_json(sorted(map(repr, sorted(keys)))).encode("utf-8")
    ).hexdigest()
    frozen = frozenset(outcomes)
    return frozen, digest, test.condition_observed(frozen)


def detection_channels(
    test: LitmusTest,
    axiom: str,
    baseline: Tuple[FrozenSet, str, bool],
) -> Tuple[str, ...]:
    """Which channels notice ``axiom`` being skipped on ``test``."""
    outcomes, digest, observed = baseline
    ab_outcomes, ab_digest, ab_observed = summarize_shape(
        test, skip_axioms=(axiom,)
    )
    channels = []
    if ab_outcomes != outcomes:
        channels.append("outcomes")
    if ab_observed != observed:
        channels.append("verdict")
    if ab_digest != digest:
        channels.append("witnesses")
    return tuple(channels)


def sensitivity_matrix(
    tests: Sequence[LitmusTest],
    axioms: Optional[Sequence[str]] = None,
) -> Dict:
    """The full ablation matrix over ``tests`` as a JSON-ready payload.

    Deterministic: shapes sort by name, axioms by spec order, channel
    lists by :data:`CHANNELS` order — so the canonical JSON is
    byte-stable across runs and machines and can be pinned as a golden.
    """
    names = sorted(test.name for test in tests)
    by_name = {test.name: test for test in tests}
    if len(by_name) != len(tests):
        raise ValueError("sensitivity matrix needs unique test names")
    axiom_names = list(axioms) if axioms is not None else list(spec.AXIOMS)
    baselines = {
        name: summarize_shape(by_name[name]) for name in names
    }
    matrix: Dict[str, Dict] = {}
    for axiom in axiom_names:
        detected_by: Dict[str, List[str]] = {}
        for name in names:
            channels = detection_channels(by_name[name], axiom, baselines[name])
            if channels:
                detected_by[name] = list(channels)
        matrix[axiom] = {
            "detected": bool(detected_by),
            "detected_by": detected_by,
        }
    return {
        "schema": SENSITIVITY_SCHEMA,
        "axioms": matrix,
        "shapes": names,
    }


def render_sensitivity(payload: Dict) -> str:
    """The byte-deterministic JSON form (what the golden file pins)."""
    return canonical_json(payload) + "\n"


def undetected_axioms(payload: Dict) -> List[str]:
    """Axioms no corpus shape detects — the golden test's failure list."""
    return sorted(
        axiom
        for axiom, entry in payload.get("axioms", {}).items()
        if not entry.get("detected")
    )


def coherence_probe() -> LitmusTest:
    """A shape whose *outcome set* flips when Coherence is skipped.

    The two writes to ``x`` are weak, hence not morally strong: the
    partial coherence order never orients them by enumeration, only the
    Coherence axiom's cause-forced edge does (W x=1 precedes W x=2
    through the release/acquire synchronization).  With the axiom
    enforced and r1=1, x settles to 2; skipped, both writes are
    co-maximal and x may also read 1.
    """
    t0, t1 = device_thread(0, 0, 0), device_thread(0, 0, 1)
    program = (
        ProgramBuilder("probe/Coherence")
        .thread(t0)
        .st("x", 1)
        .st("y", 1, sem=Sem.RELEASE, scope=Scope.SYS)
        .thread(t1)
        .ld("r1", "y", sem=Sem.ACQUIRE, scope=Scope.SYS)
        .st("x", 2)
        .build()
    )
    return make_test(
        "probe/Coherence",
        program,
        "1:r1=1 & [x]=1",
        "forbidden",
        description=(
            "weak same-location writes ordered only by the Coherence "
            "axiom's cause-forced co edge; ablation makes [x]=1 reachable"
        ),
    )


def fence_sc_probe() -> LitmusTest:
    """A shape whose *witness set* grows when FenceSC is skipped.

    The CTA execution barrier gives cause(F1 -> F0) with no rf edge on
    the path, so the sc orientation F0 -> F1 violates FenceSC and
    nothing else: skipping the axiom admits exactly that extra witness
    while every outcome survives — the channel outcome-diffing misses
    and the witness digest catches.
    """
    t0, t1 = device_thread(0, 0, 0), device_thread(0, 0, 1)
    program = (
        ProgramBuilder("probe/FenceSC")
        .thread(t0)
        .bar()
        .fence(sem=Sem.SC, scope=Scope.CTA)
        .st("x", 1)
        .thread(t1)
        .fence(sem=Sem.SC, scope=Scope.CTA)
        .bar()
        .build()
    )
    return make_test(
        "probe/FenceSC",
        program,
        "[x]=1",
        "allowed",
        description=(
            "bar.sync-induced cause between fence.sc pairs; FenceSC "
            "ablation admits the reversed sc orientation as a new witness"
        ),
    )


def axiom_probes() -> Tuple[LitmusTest, ...]:
    """Pinned shapes guaranteeing every axiom stays detectable.

    The suite members cover the axioms whose violations need program
    shapes the fuzz generator cannot emit (RMWs for Atomicity, register
    dependencies for No-Thin-Air); the two hand-built probes cover the
    axioms invisible to outcome-only comparison on generated shapes.
    """
    from ..litmus.suite import SUITE

    by_name = {test.name: test for test in SUITE}
    return (
        coherence_probe(),
        fence_sc_probe(),
        by_name["2xAtomAdd.gpu"],
        by_name["AtomExch+MP"],
        by_name["LB+deps"],
        by_name["CoWR"],
        by_name["CoWW"],
        by_name["MP+rel_acq.gpu"],
        by_name["IRIW+fence.sc"],
    )
