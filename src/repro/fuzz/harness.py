"""The fuzzing engine behind ``ptxmm fuzz``.

Drives the generate → oracle → shrink pipeline under a budget (a case
count or a wall-clock limit), batching engine work through one
:class:`~repro.litmus.session.Session` so ``--jobs`` parallelism and
failure isolation come from the existing machinery.

Reproducibility contract: with a count budget, a run is a pure function
of ``(seed, budget, checks)`` — the generated tests, the per-check
counters, and any discrepancies found are identical across runs, job
counts, and machines.  Wall-clock budgets necessarily vary in how *far*
they get, but the case stream itself is still the same, so any case a
timed run found can be replayed by index.

On a discrepancy the harness shrinks the failing test (re-checking
candidates in-process against the same check battery) and, given an
artifact directory, writes ``repro-<kind>-<hash>/`` containing the
shrunk ``repro.litmus`` (parseable, with the seed in a comment header),
the unshrunk ``original.litmus``, and a machine-readable ``report.json``.
The hash is the canonical-form hash of the shrunk test, so two cases
that minimize to the same repro share one artifact — index-based names
collided when ``--max-found`` raced the jobs pool, and hid the fact
that a hundred "findings" were one bug.
"""

from __future__ import annotations

import hashlib
import json
import re
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..litmus.config import RunConfig
from ..litmus.parser import parse_litmus
from ..litmus.serialize import canonical_json, test_to_dict, test_to_litmus
from ..litmus.session import Session
from ..litmus.test import LitmusTest
from .gen import FuzzCase, generate_case
from .oracle import CaseVerdict, Check, Discrepancy, Oracle, default_checks
from .shrink import EngineCrash, ShrinkResult, shrink

_BUDGET_RE = re.compile(r"^(\d+)\s*(s|m|h)?$")


@dataclass(frozen=True)
class FuzzBudget:
    """How long to fuzz: a case count or a wall-clock limit."""

    count: Optional[int] = None
    seconds: Optional[float] = None

    def __post_init__(self):
        if (self.count is None) == (self.seconds is None):
            raise ValueError("budget needs exactly one of count/seconds")
        if self.count is not None and self.count <= 0:
            raise ValueError("budget count must be positive")
        if self.seconds is not None and self.seconds <= 0:
            raise ValueError("budget seconds must be positive")

    @classmethod
    def parse(cls, text: str) -> "FuzzBudget":
        """``"200"`` = 200 cases; ``"60s"``/``"5m"``/``"1h"`` = wall clock."""
        match = _BUDGET_RE.match(text.strip())
        if not match:
            raise ValueError(
                f"bad budget {text!r}: use a count ('200') or a duration "
                "('60s', '5m', '1h')"
            )
        amount, unit = int(match.group(1)), match.group(2)
        if unit is None:
            return cls(count=amount)
        return cls(seconds=amount * {"s": 1, "m": 60, "h": 3600}[unit])

    def __str__(self) -> str:
        if self.count is not None:
            return str(self.count)
        return f"{int(self.seconds)}s"


@dataclass
class FuzzStats:
    """Deterministic counters for one fuzz run (time kept separate)."""

    generated: int = 0
    #: (test, check) pairs that ran to a comparison
    checks_run: int = 0
    #: (test, check) pairs skipped for engine timeout/error
    undecided: int = 0
    discrepancies: int = 0
    #: discrepancies whose shrunk repro duplicated an earlier finding
    #: (same check kind, same canonical-form hash)
    deduped: int = 0
    #: per-check-kind agree counts
    by_check: Dict[str, int] = field(default_factory=dict)

    def record(self, verdict: CaseVerdict) -> None:
        self.generated += 1
        self.checks_run += len(verdict.agreed) + len(verdict.discrepancies)
        self.undecided += len(verdict.undecided)
        self.discrepancies += len(verdict.discrepancies)
        for kind in verdict.agreed:
            self.by_check[kind] = self.by_check.get(kind, 0) + 1

    def format(self) -> str:
        per_check = " ".join(
            f"{kind}={count}" for kind, count in sorted(self.by_check.items())
        )
        return (
            f"generated={self.generated} checks={self.checks_run} "
            f"undecided={self.undecided} discrepancies={self.discrepancies}"
            + (f" deduped={self.deduped}" if self.deduped else "")
            + (f" [{per_check}]" if per_check else "")
        )


@dataclass(frozen=True)
class FoundDiscrepancy:
    """One discrepancy plus its minimized repro and artifact location."""

    case: FuzzCase
    discrepancy: Discrepancy
    shrunk: ShrinkResult
    artifact_dir: Optional[str] = None


@dataclass
class FuzzReport:
    """Everything one fuzz run produced."""

    seed: int
    budget: FuzzBudget
    stats: FuzzStats
    found: List[FoundDiscrepancy] = field(default_factory=list)
    elapsed: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.found


def canonical_test_hash(test: LitmusTest) -> str:
    """Canonical-form hash of a test: program + condition, nothing else.

    Naming metadata (name, description, figure) and documented verdicts
    are stripped before hashing, so two generated tests that reduce to
    the same program and condition — regardless of which fuzz index
    produced them — hash identically.  This is the dedup key for
    shrunk artifacts and the farm's corpus candidates.
    """
    payload = test_to_dict(test)
    for key in ("name", "description", "figure", "expect", "expect_other"):
        payload.pop(key, None)
    return hashlib.sha256(
        canonical_json(payload).encode("utf-8")
    ).hexdigest()[:12]


def _repro_header(case: FuzzCase, discrepancy: Discrepancy) -> str:
    return (
        f"// ptxmm fuzz repro — seed {case.seed}, case {case.index}\n"
        f"// check: {discrepancy.kind} "
        f"({discrepancy.left_label} vs {discrepancy.right_label})\n"
        f"// detail: {discrepancy.detail}\n"
    )


def write_artifact(
    directory: Path,
    case: FuzzCase,
    discrepancy: Discrepancy,
    shrunk: ShrinkResult,
) -> Path:
    """Dump one discrepancy: shrunk repro, original test, JSON report.

    The directory name keys on the *shrunk* test's canonical-form hash:
    cases that minimize to the same repro land in the same directory
    (last writer wins — the contents describe the same bug).
    """
    target = (
        directory
        / f"repro-{discrepancy.kind}-{canonical_test_hash(shrunk.test)}"
    )
    target.mkdir(parents=True, exist_ok=True)
    header = _repro_header(case, discrepancy)
    (target / "repro.litmus").write_text(
        header + test_to_litmus(shrunk.test)
    )
    (target / "original.litmus").write_text(
        header + test_to_litmus(case.test)
    )
    (target / "report.json").write_text(
        json.dumps(
            {
                "seed": case.seed,
                "index": case.index,
                "cycle": case.cycle,
                "kind": discrepancy.kind,
                "left": discrepancy.left_label,
                "right": discrepancy.right_label,
                "detail": discrepancy.detail,
                "shrink_steps": shrunk.steps,
                "shrink_attempts": shrunk.attempts,
                "shrink_crashes": shrunk.crashes,
                "shrink_crash_details": list(shrunk.crash_details),
                "original_test": test_to_dict(case.test),
                "shrunk_test": test_to_dict(shrunk.test),
            },
            indent=2,
            sort_keys=True,
        )
        + "\n"
    )
    return target


def _shrink_predicate(
    oracle: Oracle, kind: str
) -> Callable[[LitmusTest], bool]:
    """Does a candidate still exhibit a discrepancy of the same kind?

    An engine *crash* on the checked kind raises
    :class:`~repro.fuzz.shrink.EngineCrash` instead of returning False:
    "the engine blew up on this candidate" must not shrink-step as if
    the discrepancy had disappeared.
    """

    def still_fails(candidate: LitmusTest) -> bool:
        verdict = oracle.evaluate_one(candidate)
        if any(d.kind == kind for d in verdict.discrepancies):
            return True
        for error_kind, detail in verdict.errors:
            if error_kind == kind:
                raise EngineCrash(detail)
        return False

    return still_fails


def run_fuzz(
    seed: int,
    budget: FuzzBudget,
    jobs: int = 1,
    timeout: Optional[float] = 20.0,
    perturb: Optional[str] = None,
    checks: Optional[Sequence[Check]] = None,
    artifact_dir: Optional[str] = None,
    shrink_attempts: int = 2000,
    max_found: int = 10,
    progress: Optional[Callable[[FuzzStats], None]] = None,
    kernel: str = "bit",
) -> FuzzReport:
    """Fuzz the engines; see the module docstring for the contract.

    ``perturb`` deliberately breaks the enumerative PTX engine by
    skipping the named axiom — the self-test mode proving the pipeline
    detects and shrinks real disagreements.  ``max_found`` stops a run
    early once that many discrepancies were minimized: a systematically
    broken engine would otherwise turn the whole budget into slow
    shrinking work.
    """
    oracle = Oracle(
        checks if checks is not None else default_checks(perturb),
        base_config=RunConfig(timeout=timeout, kernel=kernel),
    )
    stats = FuzzStats()
    report = FuzzReport(seed=seed, budget=budget, stats=stats)
    started = time.perf_counter()
    session_config = RunConfig(jobs=jobs, timeout=timeout, kernel=kernel)
    directory = Path(artifact_dir) if artifact_dir is not None else None
    index = 0
    # (check kind, canonical-form hash of the shrunk repro) -> artifact:
    # identical findings dedup to one entry however many cases hit them
    seen_repros: Dict[Tuple[str, str], Optional[str]] = {}
    with Session(session_config) as session:
        batch_size = max(2 * session.jobs, 8)
        while True:
            if budget.count is not None:
                remaining = budget.count - stats.generated
                if remaining <= 0:
                    break
                batch = min(batch_size, remaining)
            else:
                if time.perf_counter() - started >= budget.seconds:
                    break
                batch = batch_size
            cases = [generate_case(seed, i) for i in range(index, index + batch)]
            index += batch
            verdicts = oracle.evaluate([case.test for case in cases], session)
            for case, verdict in zip(cases, verdicts):
                stats.record(verdict)
                for discrepancy in verdict.discrepancies:
                    if len(report.found) >= max_found:
                        continue
                    shrunk = shrink(
                        case.test,
                        _shrink_predicate(oracle, discrepancy.kind),
                        max_attempts=shrink_attempts,
                    )
                    dedup_key = (
                        discrepancy.kind, canonical_test_hash(shrunk.test)
                    )
                    if dedup_key in seen_repros:
                        stats.deduped += 1
                        continue
                    location = None
                    if directory is not None:
                        location = str(
                            write_artifact(directory, case, discrepancy, shrunk)
                        )
                    seen_repros[dedup_key] = location
                    report.found.append(
                        FoundDiscrepancy(
                            case=case,
                            discrepancy=discrepancy,
                            shrunk=shrunk,
                            artifact_dir=location,
                        )
                    )
            if progress is not None:
                progress(stats)
            if len(report.found) >= max_found:
                break
    report.elapsed = time.perf_counter() - started
    return report


def recheck_artifact(
    path: str,
    perturb: Optional[str] = None,
    checks: Optional[Sequence[Check]] = None,
    timeout: Optional[float] = 20.0,
    shrink_attempts: int = 2000,
    kernel: str = "bit",
) -> Tuple[CaseVerdict, Optional[ShrinkResult]]:
    """Replay a CI artifact: parse the litmus file, re-run the oracle,
    and re-shrink if the discrepancy still reproduces.

    Accepts either of the emitted files (``repro.litmus`` or
    ``original.litmus``) — or any parseable litmus file.  Returns the
    oracle's verdict on the parsed test and, when it still finds a
    discrepancy, a fresh shrink of it (None otherwise).
    """
    test = parse_litmus(Path(path).read_text())
    oracle = Oracle(
        checks if checks is not None else default_checks(perturb),
        base_config=RunConfig(timeout=timeout, kernel=kernel),
    )
    verdict = oracle.evaluate_one(test)
    if verdict.clean:
        return verdict, None
    kind = verdict.discrepancies[0].kind
    shrunk = shrink(
        test, _shrink_predicate(oracle, kind), max_attempts=shrink_attempts
    )
    return verdict, shrunk
