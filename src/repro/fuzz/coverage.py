"""Structural coverage for differential fuzzing.

The fuzzer already computes everything interesting about a case — the
cycle it was synthesized from, the annotations and thread layout it
drew, and (through the enumerative engine) which axioms fired, which
prune branches were taken, and what the outcome set looked like.  This
module folds those observations into a deterministic
:class:`CoverageMap` so the farm driver can (a) steer generation toward
features never seen, (b) decide which cases are worth keeping, and
(c) distill a minimal regression corpus that preserves the frontier.

Features are short structured labels (``"edge:Rfe"``,
``"annot:W:release.gpu"``, ``"axiom-failed:Causality"``); the label set
is open-ended by design — any new observation source just contributes
new labels and old maps keep merging.  :func:`feature_hash` gives a
stable 64-bit content hash of a label for compact external references
(artifact names, logs); the map itself keys by the readable label.

A :class:`CoverageMap` records, per feature, the smallest case index
that first exhibited it.  Merging maps takes the pointwise minimum,
which makes merge associative, commutative, and idempotent — exactly
the algebra a sharded, checkpoint/resume farm needs: any interleaving
of partial maps folds to the same result.
"""

from __future__ import annotations

import hashlib
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from ..litmus.test import LitmusTest
from ..ptx.isa import Atom, Bar, Fence, Ld, Red, St
from ..ptx.events import Sem

#: serialization shape of CoverageMap.to_dict
COVERAGE_SCHEMA = 1


def feature_hash(label: str) -> str:
    """A stable 64-bit (16 hex digit) content hash of a feature label.

    Independent of process hash randomization and Python version, so
    hashes embedded in artifacts and checkpoints stay comparable.
    """
    return hashlib.sha256(label.encode("utf-8")).hexdigest()[:16]


def _annotation_label(sem, scope) -> str:
    return sem.value if scope is None else f"{sem.value}.{scope.value}"


def _scope_level(a, b) -> str:
    """The narrowest scope level containing threads ``a`` and ``b``."""
    if a.is_host or b.is_host:
        return "sys"
    if a.gpu == b.gpu:
        return "cta" if a.cta == b.cta else "gpu"
    return "sys"


def _layout_label(threads: Sequence) -> str:
    """Classify a program's thread placement like the generator's knob."""
    tids = [t.tid for t in threads]
    if any(t.is_host for t in tids):
        return "host"
    ctas = {(t.gpu, t.cta) for t in tids}
    gpus = {t.gpu for t in tids}
    if len(ctas) == 1:
        return "cta"
    if len(gpus) == 1:
        return "gpu"
    if len(gpus) == len(tids):
        return "sys"
    return "mixed"


def case_features(
    test: LitmusTest, cycle: Optional[str] = None
) -> FrozenSet[str]:
    """Static features of a litmus test (plus its cycle when known).

    Purely syntactic: annotation combinations per access kind, thread
    layout, program shape, and — when the generating cycle is available
    — the edge alphabet and the scope level each communication edge
    spans under the chosen placement.
    """
    program = test.program
    features = {
        f"threads:{len(program.threads)}",
        f"locs:{len(program.locations)}",
        f"layout:{_layout_label(program.threads)}",
    }
    for thread in program.threads:
        for instr in thread.instructions:
            if isinstance(instr, Ld):
                features.add(
                    f"annot:R:{_annotation_label(instr.sem, instr.scope)}"
                )
            elif isinstance(instr, St):
                features.add(
                    f"annot:W:{_annotation_label(instr.sem, instr.scope)}"
                )
                srcs = instr.src if instr.vec > 1 else (instr.src,)
                if any(not isinstance(s, int) for s in srcs):
                    features.add("has:dep")
            elif isinstance(instr, (Atom, Red)):
                features.add(
                    f"annot:U:{_annotation_label(instr.sem, instr.scope)}"
                )
                features.add("has:rmw")
                features.add("has:dep")
            elif isinstance(instr, Fence):
                features.add(
                    f"annot:F:{_annotation_label(instr.sem, instr.scope)}"
                )
                features.add("has:fence")
                if instr.sem is Sem.SC:
                    features.add("has:sc-fence")
            elif isinstance(instr, Bar):
                features.add("has:syncbarrier")
    if cycle:
        features |= cycle_features(cycle, [t.tid for t in program.threads])
    return frozenset(features)


def cycle_features(
    cycle: str, thread_ids: Optional[Sequence] = None
) -> FrozenSet[str]:
    """Features of a diy cycle spec: length, edge alphabet, and — given
    the placed thread ids — the scope level each edge spans."""
    from ..litmus.generator import _walk, edge

    names = tuple(cycle.split("+"))
    features = {f"len:{len(names)}"}
    for name in names:
        features.add(f"edge:{name}")
    if thread_ids:
        slots = _walk(tuple(edge(name) for name in names))
        for i, name in enumerate(names):
            src = slots[i]
            dst = slots[(i + 1) % len(slots)]
            if src.thread == dst.thread:
                continue  # po edges span no scope boundary
            level = _scope_level(
                thread_ids[src.thread], thread_ids[dst.thread]
            )
            features.add(f"edge-scope:{name}:{level}")
    return frozenset(features)


def result_features(result) -> FrozenSet[str]:
    """Dynamic features of one engine run (a :class:`LitmusResult`).

    Extracted from observations the run already made: the verdict, the
    outcome-set size, and the enumeration counters — including the
    per-axiom failure counts recorded by the search (schema v6).
    """
    features = set()
    status = getattr(result, "status", None)
    if status and status != "ok":
        features.add(f"status:{status}")
    observed = getattr(result, "observed", None)
    if observed is not None:
        features.add(f"observed:{str(bool(observed)).lower()}")
    outcomes = getattr(result, "outcomes", None)
    if outcomes is not None:
        features.add(f"outcomes:{_bucket(len(outcomes))}")
    stats = getattr(result, "enum_stats", None)
    if stats is not None:
        data = stats.as_dict() if hasattr(stats, "as_dict") else dict(stats)
        if data.get("rf_pruned"):
            features.add("prune:rf")
        if data.get("pre_co_pruned"):
            features.add("prune:pre-co")
        if data.get("saturation_steps"):
            features.add("prune:saturation")
        for axiom, count in dict(data.get("axiom_failed") or {}).items():
            if count:
                features.add(f"axiom-failed:{axiom}")
    return frozenset(features)


def _bucket(count: int) -> str:
    """Log-ish bucketing so outcome-set size is a small feature family."""
    if count <= 2:
        return str(count)
    for bound in (4, 8, 16, 32):
        if count <= bound:
            return f"<={bound}"
    return ">32"


class CoverageMap:
    """Feature -> smallest case index that first exhibited it.

    ``merge`` takes the pointwise minimum of first-hit indices, making
    it associative, commutative, and idempotent: shards and resumed
    sessions can fold their partial maps in any order and arrive at the
    same map (and the same :meth:`digest`).
    """

    __slots__ = ("_first_hit",)

    def __init__(self, first_hit: Optional[Mapping[str, int]] = None):
        self._first_hit: Dict[str, int] = dict(first_hit or {})

    def observe(self, features: Iterable[str], index: int) -> FrozenSet[str]:
        """Record ``features`` as hit by case ``index``; return the ones
        that were new (never seen before this call)."""
        new = set()
        for feature in features:
            seen = self._first_hit.get(feature)
            if seen is None:
                self._first_hit[feature] = index
                new.add(feature)
            elif index < seen:
                self._first_hit[feature] = index
        return frozenset(new)

    def merge(self, other: "CoverageMap") -> "CoverageMap":
        """The pointwise-minimum join of two maps (a new map)."""
        merged = dict(self._first_hit)
        for feature, index in other._first_hit.items():
            seen = merged.get(feature)
            if seen is None or index < seen:
                merged[feature] = index
        return CoverageMap(merged)

    def features(self) -> FrozenSet[str]:
        return frozenset(self._first_hit)

    def first_hit(self, feature: str) -> Optional[int]:
        return self._first_hit.get(feature)

    def __len__(self) -> int:
        return len(self._first_hit)

    def __contains__(self, feature: str) -> bool:
        return feature in self._first_hit

    def __eq__(self, other) -> bool:
        if not isinstance(other, CoverageMap):
            return NotImplemented
        return self._first_hit == other._first_hit

    def __repr__(self) -> str:
        return f"<CoverageMap {len(self._first_hit)} features>"

    def to_dict(self) -> Dict:
        """Deterministic serialization (sorted by feature label)."""
        return {
            "schema": COVERAGE_SCHEMA,
            "features": dict(sorted(self._first_hit.items())),
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "CoverageMap":
        if payload.get("schema") != COVERAGE_SCHEMA:
            raise ValueError(
                f"unsupported coverage map schema {payload.get('schema')!r} "
                f"(this build reads v{COVERAGE_SCHEMA})"
            )
        return cls({
            str(k): int(v) for k, v in dict(payload["features"]).items()
        })

    def digest(self) -> str:
        """Content hash of the map (canonical JSON, key-sorted)."""
        from ..litmus.serialize import canonical_json

        return hashlib.sha256(
            canonical_json(self.to_dict()).encode("utf-8")
        ).hexdigest()


#: which generator layouts can realize each cross-thread scope level: a
#: same-CTA pair needs the "cta" layout; "mixed" placements can span
#: either the gpu or the sys boundary depending on the sampled grid
_LEVEL_LAYOUTS = {
    "cta": ("cta",),
    "gpu": ("gpu", "mixed"),
    "sys": ("sys", "mixed"),
}
_SCOPE_LEVELS = tuple(_LEVEL_LAYOUTS)


def bias_from_coverage(coverage: "CoverageMap", boost: float = 8.0):
    """A :class:`~repro.fuzz.gen.GenBias` steering toward the uncovered.

    Every generation knob whose ``annot:*`` / ``edge:*`` / ``layout:*``
    / ``len:*`` feature is missing from ``coverage`` gets its sampling
    weight multiplied by ``boost``; covered choices keep weight 1.0, so
    nothing is ever excluded — only reweighted.  Deterministic in the
    map contents, so a farm round replays from its checkpointed map.

    Pair features need joint steering: no single knob produces an
    ``edge-scope:<edge>:<level>`` observation, so once the individual
    labels are covered a per-knob bias goes neutral and the pair is
    left to luck.  Each uncovered pair therefore raises both the edge's
    weight and the weights of the layouts able to realize that scope
    level — to ``sqrt(boost)``, an intermediate tier, so direct gaps
    (weight ``boost``) still dominate while they exist.  Likewise the
    ``layout:mixed`` classification needs at least three threads (two
    threads always reduce to cta/gpu/sys), so while it is uncovered the
    cycle lengths that can yield three-plus threads stay raised.
    """
    from ..litmus.generator import edge as _edge
    from .gen import (
        DEFAULT_VOCABULARY,
        GenBias,
        _FENCE_ANNOTATIONS,
        _LAYOUTS,
        _LENGTHS,
        _READ_ANNOTATIONS,
        _WRITE_ANNOTATIONS,
        annotation_label,
    )

    indirect = boost ** 0.5

    def weight(feature: str) -> float:
        return 1.0 if feature in coverage else boost

    # only external communication edges hop threads, so only they can
    # exhibit edge-scope pair features; collect the uncovered pairs
    pair_edges = set()
    pair_layouts = set()
    for name in DEFAULT_VOCABULARY:
        if not _edge(name).external:
            continue
        for level in _SCOPE_LEVELS:
            if f"edge-scope:{name}:{level}" not in coverage:
                pair_edges.add(name)
                pair_layouts.update(_LEVEL_LAYOUTS[level])

    def edge_weight(name: str) -> float:
        direct = weight(f"edge:{name}")
        return direct if direct > 1.0 else (
            indirect if name in pair_edges else 1.0
        )

    def layout_weight(layout: str) -> float:
        direct = weight(f"layout:{layout}")
        return direct if direct > 1.0 else (
            indirect if layout in pair_layouts else 1.0
        )

    mixed_uncovered = "layout:mixed" not in coverage

    def length_weight(length: int) -> float:
        direct = weight(f"len:{length}")
        return direct if direct > 1.0 else (
            indirect if length >= 3 and mixed_uncovered else 1.0
        )

    annotation_weights = {}
    for kind, choices in (("R", _READ_ANNOTATIONS), ("W", _WRITE_ANNOTATIONS)):
        for sem, scope in choices:
            label = annotation_label(sem, scope)
            annotation_weights[f"{kind}:{label}"] = weight(
                f"annot:{kind}:{label}"
            )
    fence_weights = {
        annotation_label(sem, scope): weight(
            f"annot:F:{annotation_label(sem, scope)}"
        )
        for sem, scope in _FENCE_ANNOTATIONS
    }
    # uncovered fence annotations are unreachable unless fences are
    # emitted at all, so raise the fence rate while any remain unseen
    fence_rate = 0.35 if all(w == 1.0 for w in fence_weights.values()) else 0.7
    return GenBias(
        edge_weights={
            name: edge_weight(name) for name in DEFAULT_VOCABULARY
        },
        annotation_weights=annotation_weights,
        fence_weights=fence_weights,
        layout_weights={
            layout: layout_weight(layout) for layout in _LAYOUTS
        },
        length_weights={
            length: length_weight(length) for length in set(_LENGTHS)
        },
        fence_rate=fence_rate,
    )


def distill(
    candidates: Mapping[str, Iterable[str]],
    frontier: Optional[Iterable[str]] = None,
) -> List[str]:
    """Greedy minimal test set preserving the coverage frontier.

    ``candidates`` maps a stable key (test name) to the feature set that
    test exhibits; the returned keys, in selection order, jointly cover
    exactly the union of all candidate features (or ``frontier``
    restricted to what the candidates can reach, when given).  Greedy
    set cover with a deterministic tie-break: largest gain first, then
    lexicographically smallest key, so the same inputs always distill
    to the same corpus.
    """
    feature_sets = {
        key: frozenset(features) for key, features in candidates.items()
    }
    reachable = frozenset().union(*feature_sets.values()) if feature_sets else frozenset()
    uncovered = (
        set(reachable) if frontier is None
        else set(frontier) & set(reachable)
    )
    selected: List[str] = []
    while uncovered:
        best_key = min(
            feature_sets,
            key=lambda key: (-len(feature_sets[key] & uncovered), key),
        )
        gain = feature_sets[best_key] & uncovered
        if not gain:
            break
        selected.append(best_key)
        uncovered -= gain
        del feature_sets[best_key]
    return selected
