"""Seed-reproducible generation of perturbed litmus tests.

Each fuzz case is a pure function of ``(seed, index)``: the case derives
its own child RNG from both, so any case can be regenerated in isolation
— parallel runs, partial runs, and replays of a single index all see the
identical test.  That property is what makes ``ptxmm fuzz --seed N``
bit-reproducible and what lets a CI artifact name a case by seed+index
alone.

Generation starts from a critical cycle (the diy-style synthesis in
:mod:`repro.litmus.generator`) and perturbs every knob the generator
exposes: per-slot semantics/scope annotations, thread placements
(same-CTA, per-CTA, cross-GPU, or mixed coordinates), per-location value
sequences, and randomized fence insertion on program-order edges.

Coverage steering reuses the same knobs: a :class:`GenBias` reweights
each choice toward features the farm's coverage map has not seen yet.
A case is then a pure function of ``(seed, index, bias)`` — with
``bias=None`` the choice sequence is byte-identical to the unbiased
fuzzer, so existing seeds replay unchanged.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Mapping, Optional, Sequence, Tuple

from ..core.scopes import Scope, ThreadId, device_thread
from ..litmus.generator import (
    EDGE_NAMES,
    _LOC_NAMES,
    CycleError,
    GeneratedTest,
    _walk,
    edge,
    enumerate_cycles,
    generate,
)
from ..litmus.test import LitmusTest
from ..ptx.events import Sem

#: Edge vocabulary for fuzzed cycles: the generator's full diy alphabet
#: — external and internal communication edges plus all program-order
#: edges.  Internal edges matter here: they exercise the coherence
#: axioms, exactly where the symbolic encoding's co handling is
#: subtlest.
DEFAULT_VOCABULARY: Tuple[str, ...] = EDGE_NAMES

#: Valid (sem, scope) annotations per access kind.  ``weak`` carries no
#: scope; every other semantic takes one of the three scope levels.
_SCOPES = (Scope.CTA, Scope.GPU, Scope.SYS)
_READ_ANNOTATIONS: Tuple[Tuple[Sem, Optional[Scope]], ...] = (
    (Sem.WEAK, None),
) + tuple((sem, scope) for sem in (Sem.RELAXED, Sem.ACQUIRE) for scope in _SCOPES)
_WRITE_ANNOTATIONS: Tuple[Tuple[Sem, Optional[Scope]], ...] = (
    (Sem.WEAK, None),
) + tuple((sem, scope) for sem in (Sem.RELAXED, Sem.RELEASE) for scope in _SCOPES)
_FENCE_ANNOTATIONS: Tuple[Tuple[Sem, Scope], ...] = tuple(
    (sem, scope)
    for sem in (Sem.ACQUIRE, Sem.RELEASE, Sem.ACQ_REL, Sem.SC)
    for scope in _SCOPES
)

#: Cycle lengths and their sampling weights: longer cycles exercise more
#: annotation combinations but cost more per decision, so mid lengths
#: dominate.
_LENGTHS = (2, 3, 3, 3, 4, 4)


def annotation_label(sem: Sem, scope: Optional[Scope]) -> str:
    """The canonical short label of a (sem, scope) annotation — the same
    spelling :mod:`repro.fuzz.coverage` uses in ``annot:*`` features."""
    return sem.value if scope is None else f"{sem.value}.{scope.value}"


@dataclass(frozen=True)
class GenBias:
    """Per-knob choice weights for coverage-steered generation.

    Every mapping gives a multiplicative weight per choice label; absent
    labels weigh 1.0, so an empty bias reproduces the blind
    distribution through the weighted code path (though not the same
    RNG stream — replaying a blind seed requires ``bias=None``).
    Weights only reshape sampling: any case the blind fuzzer can emit
    remains emittable, so steering never hides part of the space.
    """

    #: weight per cycle edge name ("Rfe", "PodWW", ...); a cycle's
    #: weight is the sum of its edges' weights
    edge_weights: Mapping[str, float] = field(default_factory=dict)
    #: weight per "<kind>:<annotation>" label ("R:acquire.gpu", "W:weak")
    annotation_weights: Mapping[str, float] = field(default_factory=dict)
    #: weight per fence annotation label ("sc.cta", "acq_rel.sys")
    fence_weights: Mapping[str, float] = field(default_factory=dict)
    #: weight per thread-layout name ("cta", "gpu", "sys", "mixed")
    layout_weights: Mapping[str, float] = field(default_factory=dict)
    #: weight per cycle length
    length_weights: Mapping[int, float] = field(default_factory=dict)
    #: probability of fencing any po edges at all (blind default 0.35)
    fence_rate: float = 0.35

    def to_dict(self) -> dict:
        """Wire form (the ``/v1/fuzz`` endpoint's ``bias`` field)."""
        return {
            "edge_weights": dict(sorted(self.edge_weights.items())),
            "annotation_weights": dict(
                sorted(self.annotation_weights.items())
            ),
            "fence_weights": dict(sorted(self.fence_weights.items())),
            "layout_weights": dict(sorted(self.layout_weights.items())),
            "length_weights": {
                str(k): v for k, v in sorted(self.length_weights.items())
            },
            "fence_rate": self.fence_rate,
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "GenBias":
        return cls(
            edge_weights={
                str(k): float(v)
                for k, v in dict(payload.get("edge_weights", {})).items()
            },
            annotation_weights={
                str(k): float(v)
                for k, v in dict(payload.get("annotation_weights", {})).items()
            },
            fence_weights={
                str(k): float(v)
                for k, v in dict(payload.get("fence_weights", {})).items()
            },
            layout_weights={
                str(k): float(v)
                for k, v in dict(payload.get("layout_weights", {})).items()
            },
            length_weights={
                int(k): float(v)
                for k, v in dict(payload.get("length_weights", {})).items()
            },
            fence_rate=float(payload.get("fence_rate", 0.35)),
        )


@dataclass(frozen=True)
class FuzzCase:
    """One generated test, addressable by ``(seed, index)`` alone."""

    seed: int
    index: int
    test: LitmusTest
    cycle: str

    @property
    def name(self) -> str:
        return self.test.name


@lru_cache(maxsize=None)
def cycle_pool(
    length: int, vocabulary: Tuple[str, ...] = DEFAULT_VOCABULARY
) -> Tuple[Tuple[str, ...], ...]:
    """All generable cycles of ``length`` over ``vocabulary`` (cached).

    ``enumerate_cycles`` yields every *closing* cycle; a few of those
    still violate the generator's one-co-chain discipline (two ``Ws``
    edges on one location, three writes to one location), so the pool
    keeps only cycles that actually synthesize.  Returned as name tuples
    in enumeration order, so indexing into the pool with a seeded RNG is
    deterministic across runs and processes.
    """
    pool = []
    for cycle in enumerate_cycles(length, vocabulary):
        names = tuple(edge.name for edge in cycle)
        try:
            generate("+".join(names))
        except CycleError:
            continue
        pool.append(names)
    return tuple(pool)


_LAYOUTS = ("cta", "gpu", "sys", "mixed")


def _placements(
    rng: random.Random,
    num_threads: int,
    bias: Optional[GenBias] = None,
) -> Optional[Sequence[ThreadId]]:
    """Pick a thread layout: the scope tree position of every thread.

    Layouts bias toward the interesting boundaries: same-CTA placements
    make ``.cta`` scopes sufficient, cross-GPU placements make ``.gpu``
    scopes insufficient, and mixed placements produce asymmetric moral
    strength between different thread pairs of one test.
    """
    if bias is None:
        layout = rng.choice(_LAYOUTS)
    else:
        layout = rng.choices(
            _LAYOUTS,
            weights=[bias.layout_weights.get(l, 1.0) for l in _LAYOUTS],
        )[0]
    if layout == "gpu":
        return None  # the generator's default: one CTA per thread
    if layout == "cta":
        return tuple(device_thread(0, 0, t) for t in range(num_threads))
    if layout == "sys":
        return tuple(device_thread(t, 0, 0) for t in range(num_threads))
    grid = [
        device_thread(gpu, cta, thread)
        for gpu in range(2)
        for cta in range(2)
        for thread in range(2)
    ]
    return tuple(rng.sample(grid, num_threads))


def _loc_values(
    rng: random.Random, slots
) -> Optional[dict]:
    """Occasionally replace the default 1, 2 values with random ones."""
    if rng.random() >= 0.25:
        return None
    writes_per_loc: dict = {}
    for slot in slots:
        if slot.kind == "W":
            writes_per_loc[slot.loc] = writes_per_loc.get(slot.loc, 0) + 1
    return {
        _LOC_NAMES[loc]: tuple(rng.sample(range(1, 10), count))
        for loc, count in sorted(writes_per_loc.items())
    }


def generate_case(
    seed: int, index: int, bias: Optional[GenBias] = None
) -> FuzzCase:
    """The ``index``-th test of the fuzz stream for ``seed`` (pure).

    Seeding the child RNG with the string ``"seed:index"`` keeps every
    case independent of every other: batching, parallelism, and budget
    shape cannot change what any given index generates.  With a
    :class:`GenBias` the same purity holds for ``(seed, index, bias)``
    — the farm only changes bias at round boundaries, so every case in
    a round is replayable from the round's checkpointed bias.  With
    ``bias=None`` the RNG consumption is byte-identical to the original
    blind fuzzer: historical seeds reproduce exactly.
    """
    rng = random.Random(f"{seed}:{index}")
    if bias is None:
        length = rng.choice(_LENGTHS)
    else:
        length = rng.choices(
            _LENGTHS,
            weights=[bias.length_weights.get(l, 1.0) for l in _LENGTHS],
        )[0]
    pool = cycle_pool(length)
    if bias is None:
        cycle_names = pool[rng.randrange(len(pool))]
    else:
        cycle_names = rng.choices(
            pool,
            weights=[
                sum(bias.edge_weights.get(name, 1.0) for name in names)
                for names in pool
            ],
        )[0]
    spec = "+".join(cycle_names)
    slots = _walk(tuple(edge(name) for name in cycle_names))

    annotations = {}
    for slot in slots:
        choices = _READ_ANNOTATIONS if slot.kind == "R" else _WRITE_ANNOTATIONS
        if bias is None:
            annotations[slot.index] = rng.choice(choices)
        else:
            annotations[slot.index] = rng.choices(
                choices,
                weights=[
                    bias.annotation_weights.get(
                        f"{slot.kind}:{annotation_label(sem, scope)}", 1.0
                    )
                    for sem, scope in choices
                ],
            )[0]

    fences = {}
    fence_rate = 0.35 if bias is None else bias.fence_rate
    if rng.random() < fence_rate:
        # fence some po edges: decided per (thread, slot) pair lazily so
        # the callable stays deterministic for the generator's traversal
        for slot in slots:
            if rng.random() < 0.5:
                if bias is None:
                    chosen = rng.choice(_FENCE_ANNOTATIONS)
                else:
                    chosen = rng.choices(
                        _FENCE_ANNOTATIONS,
                        weights=[
                            bias.fence_weights.get(
                                annotation_label(sem, scope), 1.0
                            )
                            for sem, scope in _FENCE_ANNOTATIONS
                        ],
                    )[0]
                fences[(slot.thread, slot.index)] = chosen

    def fence_po(thread: int, slot_index: int):
        return fences.get((thread, slot_index))

    num_threads = max(s.thread for s in slots) + 1
    generated: GeneratedTest = generate(
        spec,
        name=f"fuzz_{seed}_{index}",
        annotations=annotations,
        placements=_placements(rng, num_threads, bias),
        loc_values=_loc_values(rng, slots),
        fence_po=fence_po,
    )
    return FuzzCase(seed=seed, index=index, test=generated.test, cycle=spec)
