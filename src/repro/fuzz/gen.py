"""Seed-reproducible generation of perturbed litmus tests.

Each fuzz case is a pure function of ``(seed, index)``: the case derives
its own child RNG from both, so any case can be regenerated in isolation
— parallel runs, partial runs, and replays of a single index all see the
identical test.  That property is what makes ``ptxmm fuzz --seed N``
bit-reproducible and what lets a CI artifact name a case by seed+index
alone.

Generation starts from a critical cycle (the diy-style synthesis in
:mod:`repro.litmus.generator`) and perturbs every knob the generator
exposes: per-slot semantics/scope annotations, thread placements
(same-CTA, per-CTA, cross-GPU, or mixed coordinates), per-location value
sequences, and randomized fence insertion on program-order edges.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from functools import lru_cache
from typing import Optional, Sequence, Tuple

from ..core.scopes import Scope, ThreadId, device_thread
from ..litmus.generator import (
    EDGE_NAMES,
    _LOC_NAMES,
    CycleError,
    GeneratedTest,
    _walk,
    edge,
    enumerate_cycles,
    generate,
)
from ..litmus.test import LitmusTest
from ..ptx.events import Sem

#: Edge vocabulary for fuzzed cycles: the generator's full diy alphabet
#: — external and internal communication edges plus all program-order
#: edges.  Internal edges matter here: they exercise the coherence
#: axioms, exactly where the symbolic encoding's co handling is
#: subtlest.
DEFAULT_VOCABULARY: Tuple[str, ...] = EDGE_NAMES

#: Valid (sem, scope) annotations per access kind.  ``weak`` carries no
#: scope; every other semantic takes one of the three scope levels.
_SCOPES = (Scope.CTA, Scope.GPU, Scope.SYS)
_READ_ANNOTATIONS: Tuple[Tuple[Sem, Optional[Scope]], ...] = (
    (Sem.WEAK, None),
) + tuple((sem, scope) for sem in (Sem.RELAXED, Sem.ACQUIRE) for scope in _SCOPES)
_WRITE_ANNOTATIONS: Tuple[Tuple[Sem, Optional[Scope]], ...] = (
    (Sem.WEAK, None),
) + tuple((sem, scope) for sem in (Sem.RELAXED, Sem.RELEASE) for scope in _SCOPES)
_FENCE_ANNOTATIONS: Tuple[Tuple[Sem, Scope], ...] = tuple(
    (sem, scope)
    for sem in (Sem.ACQUIRE, Sem.RELEASE, Sem.ACQ_REL, Sem.SC)
    for scope in _SCOPES
)

#: Cycle lengths and their sampling weights: longer cycles exercise more
#: annotation combinations but cost more per decision, so mid lengths
#: dominate.
_LENGTHS = (2, 3, 3, 3, 4, 4)


@dataclass(frozen=True)
class FuzzCase:
    """One generated test, addressable by ``(seed, index)`` alone."""

    seed: int
    index: int
    test: LitmusTest
    cycle: str

    @property
    def name(self) -> str:
        return self.test.name


@lru_cache(maxsize=None)
def cycle_pool(
    length: int, vocabulary: Tuple[str, ...] = DEFAULT_VOCABULARY
) -> Tuple[Tuple[str, ...], ...]:
    """All generable cycles of ``length`` over ``vocabulary`` (cached).

    ``enumerate_cycles`` yields every *closing* cycle; a few of those
    still violate the generator's one-co-chain discipline (two ``Ws``
    edges on one location, three writes to one location), so the pool
    keeps only cycles that actually synthesize.  Returned as name tuples
    in enumeration order, so indexing into the pool with a seeded RNG is
    deterministic across runs and processes.
    """
    pool = []
    for cycle in enumerate_cycles(length, vocabulary):
        names = tuple(edge.name for edge in cycle)
        try:
            generate("+".join(names))
        except CycleError:
            continue
        pool.append(names)
    return tuple(pool)


def _placements(rng: random.Random, num_threads: int) -> Optional[Sequence[ThreadId]]:
    """Pick a thread layout: the scope tree position of every thread.

    Layouts bias toward the interesting boundaries: same-CTA placements
    make ``.cta`` scopes sufficient, cross-GPU placements make ``.gpu``
    scopes insufficient, and mixed placements produce asymmetric moral
    strength between different thread pairs of one test.
    """
    layout = rng.choice(("cta", "gpu", "sys", "mixed"))
    if layout == "gpu":
        return None  # the generator's default: one CTA per thread
    if layout == "cta":
        return tuple(device_thread(0, 0, t) for t in range(num_threads))
    if layout == "sys":
        return tuple(device_thread(t, 0, 0) for t in range(num_threads))
    grid = [
        device_thread(gpu, cta, thread)
        for gpu in range(2)
        for cta in range(2)
        for thread in range(2)
    ]
    return tuple(rng.sample(grid, num_threads))


def _loc_values(
    rng: random.Random, slots
) -> Optional[dict]:
    """Occasionally replace the default 1, 2 values with random ones."""
    if rng.random() >= 0.25:
        return None
    writes_per_loc: dict = {}
    for slot in slots:
        if slot.kind == "W":
            writes_per_loc[slot.loc] = writes_per_loc.get(slot.loc, 0) + 1
    return {
        _LOC_NAMES[loc]: tuple(rng.sample(range(1, 10), count))
        for loc, count in sorted(writes_per_loc.items())
    }


def generate_case(seed: int, index: int) -> FuzzCase:
    """The ``index``-th test of the fuzz stream for ``seed`` (pure).

    Seeding the child RNG with the string ``"seed:index"`` keeps every
    case independent of every other: batching, parallelism, and budget
    shape cannot change what any given index generates.
    """
    rng = random.Random(f"{seed}:{index}")
    length = rng.choice(_LENGTHS)
    pool = cycle_pool(length)
    cycle_names = pool[rng.randrange(len(pool))]
    spec = "+".join(cycle_names)
    slots = _walk(tuple(edge(name) for name in cycle_names))

    annotations = {}
    for slot in slots:
        choices = _READ_ANNOTATIONS if slot.kind == "R" else _WRITE_ANNOTATIONS
        annotations[slot.index] = rng.choice(choices)

    fences = {}
    if rng.random() < 0.35:
        # fence some po edges: decided per (thread, slot) pair lazily so
        # the callable stays deterministic for the generator's traversal
        for slot in slots:
            if rng.random() < 0.5:
                fences[(slot.thread, slot.index)] = rng.choice(_FENCE_ANNOTATIONS)

    def fence_po(thread: int, slot_index: int):
        return fences.get((thread, slot_index))

    num_threads = max(s.thread for s in slots) + 1
    generated: GeneratedTest = generate(
        spec,
        name=f"fuzz_{seed}_{index}",
        annotations=annotations,
        placements=_placements(rng, num_threads),
        loc_values=_loc_values(rng, slots),
        fence_po=fence_po,
    )
    return FuzzCase(seed=seed, index=index, test=generated.test, cycle=spec)
