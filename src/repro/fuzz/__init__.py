"""Differential conformance fuzzing of the litmus decision engines.

The repository carries four independent deciders for the same question —
the explicit enumeration search, the symbolic kodkod+SAT engine, the
operational SC/TSO machines, and DRAT-certified verdicts.  This package
cross-checks them against each other over *generated* programs, the way
weak-memory tooling is validated in practice:

* :mod:`.gen` — seed-reproducible program generation: critical cycles
  from :mod:`repro.litmus.generator` with randomized annotation, scope,
  placement, value, and fence perturbations;
* :mod:`.oracle` — the cross-engine oracle: each generated test runs
  through several engine configurations and the *full outcome sets* are
  compared (two engines can agree on a verdict while disagreeing on the
  outcomes);
* :mod:`.shrink` — a greedy discrepancy minimizer: drop threads and
  instructions, weaken conditions and annotations, canonicalize values,
  keeping every step that still reproduces the discrepancy;
* :mod:`.harness` — the ``ptxmm fuzz`` engine: budgets (count or
  wall-clock), parallel execution through the session machinery, and
  artifact emission (shrunk repro as parseable litmus text plus a JSON
  report) on every distinct discrepancy (deduped by canonical-form
  hash);
* :mod:`.coverage` — the structural coverage signal (feature
  extraction, the mergeable :class:`~repro.fuzz.coverage.CoverageMap`,
  greedy corpus distillation);
* :mod:`.farm` — the ``ptxmm farm`` engine: coverage-steered rounds,
  checkpoint/resume, artifact dedup, corpus emission;
* :mod:`.sensitivity` — the axiom-ablation sensitivity matrix (the
  empirical mirror of the paper's Figure 17) over corpus shapes.
"""

from .coverage import (
    CoverageMap,
    bias_from_coverage,
    case_features,
    distill,
    feature_hash,
    result_features,
)
from .farm import (
    FarmConfig,
    FarmReport,
    load_checkpoint,
    run_farm,
    save_checkpoint,
    write_corpus,
)
from .gen import DEFAULT_VOCABULARY, FuzzCase, GenBias, cycle_pool, generate_case
from .harness import (
    FuzzBudget,
    FuzzReport,
    FuzzStats,
    canonical_test_hash,
    recheck_artifact,
    run_fuzz,
)
from .sensitivity import (
    axiom_probes,
    render_sensitivity,
    sensitivity_matrix,
    undetected_axioms,
)
from .oracle import (
    Check,
    CaseVerdict,
    Discrepancy,
    EngineSpec,
    Oracle,
    check_test,
    default_checks,
)
from .shrink import EngineCrash, ShrinkResult, shrink

__all__ = [
    "DEFAULT_VOCABULARY",
    "FuzzCase",
    "GenBias",
    "cycle_pool",
    "generate_case",
    "FuzzBudget",
    "FuzzReport",
    "FuzzStats",
    "canonical_test_hash",
    "recheck_artifact",
    "run_fuzz",
    "CoverageMap",
    "bias_from_coverage",
    "case_features",
    "distill",
    "feature_hash",
    "result_features",
    "FarmConfig",
    "FarmReport",
    "load_checkpoint",
    "run_farm",
    "save_checkpoint",
    "write_corpus",
    "axiom_probes",
    "render_sensitivity",
    "sensitivity_matrix",
    "undetected_axioms",
    "Check",
    "CaseVerdict",
    "Discrepancy",
    "EngineSpec",
    "Oracle",
    "check_test",
    "default_checks",
    "EngineCrash",
    "ShrinkResult",
    "shrink",
]
