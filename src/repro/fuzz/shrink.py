"""Greedy minimization of discrepancy-triggering litmus tests.

Given a failing test and a predicate ("does this candidate still exhibit
the discrepancy?"), the shrinker repeatedly applies the smallest-first
transformation that keeps the predicate true:

1. drop a whole thread (condition atoms about it are pruned, remaining
   thread indices renumbered);
2. drop a single instruction (register atoms about a dropped load go
   with it; a thread emptied this way is removed);
3. weaken the condition structurally (replace a conjunction/disjunction
   by one operand, strip a negation);
4. canonicalize values (stored values become 1, 2 per location, with the
   condition remapped to match);
5. weaken annotations (step one semantic down, narrow one scope).

Every accepted step strictly decreases a well-founded cost, so shrinking
terminates; the transformation order and tie-breaks are fully
deterministic, so the same input shrinks to the same repro every time.
The result is still a valid, parseable test: candidates that would break
ISA validation or leave an unprintable condition are skipped.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from ..core.scopes import Scope, covering_shape
from ..litmus.conditions import AndC, Condition, MemEq, NotC, OrC, RegEq
from ..litmus.test import LitmusTest
from ..ptx.events import Sem
from ..ptx.isa import Atom, Instruction, Ld, Red, St
from ..ptx.program import Program, ThreadCode

#: semantic strength for the cost function and for step-down weakening
_SEM_RANK = {
    Sem.WEAK: 0, Sem.RELAXED: 1, Sem.ACQUIRE: 2,
    Sem.RELEASE: 2, Sem.ACQ_REL: 3, Sem.SC: 4,
}
_SEM_WEAKER = {
    Sem.SC: Sem.ACQ_REL,
    Sem.ACQ_REL: Sem.RELAXED,
    Sem.ACQUIRE: Sem.RELAXED,
    Sem.RELEASE: Sem.RELAXED,
    Sem.RELAXED: Sem.WEAK,
}
_SCOPE_RANK = {None: 0, Scope.CTA: 1, Scope.GPU: 2, Scope.SYS: 3}
_SCOPE_NARROWER = {Scope.SYS: Scope.GPU, Scope.GPU: Scope.CTA}


class EngineCrash(Exception):
    """A shrink candidate made an engine *crash* (status ``error``), as
    opposed to the oracle merely not finding the discrepancy on it.

    The predicate raises this so :func:`shrink` can tell the two apart:
    a crash must never be silently treated as "no repro" — the pre-crash
    best repro is kept and the crash is recorded on the result.
    """

    def __init__(self, detail: str):
        super().__init__(detail)
        self.detail = detail


@dataclass(frozen=True)
class ShrinkResult:
    """The minimized test plus how much work minimization did."""

    test: LitmusTest
    #: accepted shrinking steps
    steps: int
    #: candidate evaluations (predicate calls)
    attempts: int
    #: candidates on which an engine crashed (not: failed to reproduce)
    crashes: int = 0
    #: details of the first few crashes, for the artifact report
    crash_details: Tuple[str, ...] = ()


# ----------------------------------------------------------------------
# condition surgery
# ----------------------------------------------------------------------

def condition_atoms(cond: Condition) -> List[Condition]:
    """The RegEq/MemEq leaves of a condition, left to right."""
    if isinstance(cond, (AndC, OrC)):
        return condition_atoms(cond.left) + condition_atoms(cond.right)
    if isinstance(cond, NotC):
        return condition_atoms(cond.inner)
    return [cond]


def condition_size(cond: Condition) -> int:
    if isinstance(cond, (AndC, OrC)):
        return 1 + condition_size(cond.left) + condition_size(cond.right)
    if isinstance(cond, NotC):
        return 1 + condition_size(cond.inner)
    return 1


def _filter_condition(
    cond: Condition, keep: Callable[[Condition], bool]
) -> Optional[Condition]:
    """The condition with non-``keep`` atoms removed (None = nothing left)."""
    if isinstance(cond, AndC) or isinstance(cond, OrC):
        left = _filter_condition(cond.left, keep)
        right = _filter_condition(cond.right, keep)
        if left is None:
            return right
        if right is None:
            return left
        return type(cond)(left, right)
    if isinstance(cond, NotC):
        inner = _filter_condition(cond.inner, keep)
        return None if inner is None else NotC(inner)
    return cond if keep(cond) else None


def _map_condition(
    cond: Condition, transform: Callable[[Condition], Optional[Condition]]
) -> Optional[Condition]:
    """Rebuild with every atom passed through ``transform`` (None poisons:
    a transform that cannot handle an atom aborts the whole rewrite)."""
    if isinstance(cond, (AndC, OrC)):
        left = _map_condition(cond.left, transform)
        right = _map_condition(cond.right, transform)
        if left is None or right is None:
            return None
        return type(cond)(left, right)
    if isinstance(cond, NotC):
        inner = _map_condition(cond.inner, transform)
        return None if inner is None else NotC(inner)
    return transform(cond)


def _weakened_conditions(cond: Condition) -> Iterator[Condition]:
    """Every condition obtainable by replacing one internal node with one
    of its children (or stripping one negation), in deterministic order."""
    if isinstance(cond, (AndC, OrC)):
        yield cond.left
        yield cond.right
        for weak_left in _weakened_conditions(cond.left):
            yield type(cond)(weak_left, cond.right)
        for weak_right in _weakened_conditions(cond.right):
            yield type(cond)(cond.left, weak_right)
    elif isinstance(cond, NotC):
        yield cond.inner
        for weak_inner in _weakened_conditions(cond.inner):
            yield NotC(weak_inner)


# ----------------------------------------------------------------------
# the cost order
# ----------------------------------------------------------------------

def _instructions(program: Program) -> List[Tuple[int, int, Instruction]]:
    return [
        (t, i, instr)
        for t, thread in enumerate(program.threads)
        for i, instr in enumerate(thread.instructions)
    ]


def _annotation_weight(instr: Instruction) -> int:
    sem = getattr(instr, "sem", None)
    scope = getattr(instr, "scope", None)
    weight = 0
    if sem is not None:
        weight += _SEM_RANK[sem]
    weight += _SCOPE_RANK.get(scope, 0)
    return weight


def cost(test: LitmusTest) -> Tuple[int, int, int, int, int]:
    """A well-founded measure: every shrink step strictly decreases it."""
    instructions = _instructions(test.program)
    value_sum = 0
    for _, _, instr in instructions:
        if isinstance(instr, St) and isinstance(instr.src, int):
            value_sum += abs(instr.src)
        atoms_like = isinstance(instr, (Atom, Red))
        if atoms_like:
            value_sum += sum(
                abs(op) for op in instr.operands if isinstance(op, int)
            )
    for atom in condition_atoms(test.condition):
        value_sum += abs(atom.value)
    return (
        len(instructions),
        len(test.program.threads),
        condition_size(test.condition),
        sum(_annotation_weight(instr) for _, _, instr in instructions),
        value_sum,
    )


# ----------------------------------------------------------------------
# candidate transformations
# ----------------------------------------------------------------------

def _rebuild(test: LitmusTest, threads: List[ThreadCode], cond: Condition):
    """A candidate test over new threads/condition (None if invalid)."""
    if not threads or all(not t.instructions for t in threads):
        return None
    try:
        program = replace(
            test.program,
            threads=tuple(threads),
            shape=covering_shape(t.tid for t in threads),
        )
        return replace(test, program=program, condition=cond)
    except ValueError:
        return None


def _without_thread(test: LitmusTest, drop: int) -> Optional[LitmusTest]:
    threads = [t for i, t in enumerate(test.program.threads) if i != drop]
    if not threads:
        return None
    remaining_locs = {
        loc
        for thread in threads
        for instr in thread.instructions
        for loc in [getattr(instr, "loc", None)]
        if loc is not None
    }

    def keep(atom: Condition) -> bool:
        if isinstance(atom, RegEq):
            return atom.thread_index != drop
        if isinstance(atom, MemEq):
            return atom.loc in remaining_locs
        return True

    cond = _filter_condition(test.condition, keep)
    if cond is None:
        return None

    def renumber(atom: Condition) -> Condition:
        if isinstance(atom, RegEq) and atom.thread_index > drop:
            return RegEq(atom.thread_index - 1, atom.reg, atom.value)
        return atom

    cond = _map_condition(cond, renumber)
    if cond is None:
        return None
    return _rebuild(test, threads, cond)


def _without_instruction(
    test: LitmusTest, thread: int, index: int
) -> Optional[LitmusTest]:
    target = test.program.threads[thread]
    removed = target.instructions[index]
    instructions = (
        target.instructions[:index] + target.instructions[index + 1:]
    )
    if not instructions:
        return _without_thread(test, thread)
    threads = list(test.program.threads)
    threads[thread] = replace(target, instructions=instructions)

    dropped_regs = set()
    if isinstance(removed, Ld):
        dst = removed.dst if isinstance(removed.dst, tuple) else (removed.dst,)
        dropped_regs.update(dst)
    elif isinstance(removed, Atom):
        dropped_regs.add(removed.dst)

    def keep(atom: Condition) -> bool:
        if isinstance(atom, RegEq) and atom.thread_index == thread:
            return atom.reg not in dropped_regs
        return True

    cond = _filter_condition(test.condition, keep)
    if cond is None:
        return None
    return _rebuild(test, threads, cond)


def _value_map(program: Program) -> Dict[str, Dict[int, int]]:
    """Per location: stored value -> canonical 1, 2, ... (program order)."""
    mapping: Dict[str, Dict[int, int]] = {}
    for _, _, instr in _instructions(program):
        if isinstance(instr, St) and isinstance(instr.src, int):
            per_loc = mapping.setdefault(instr.loc, {})
            if instr.src not in per_loc:
                per_loc[instr.src] = len(per_loc) + 1
    return mapping


def _canonical_values(test: LitmusTest) -> Optional[LitmusTest]:
    mapping = _value_map(test.program)
    if all(old == new for per in mapping.values() for old, new in per.items()):
        return None

    threads: List[ThreadCode] = []
    for thread in test.program.threads:
        instructions = []
        for instr in thread.instructions:
            if isinstance(instr, St) and isinstance(instr.src, int):
                instr = replace(instr, src=mapping[instr.loc][instr.src])
            instructions.append(instr)
        threads.append(replace(thread, instructions=tuple(instructions)))

    # a register's value is tied to a location through the load defining
    # it; remap condition values through that location's table
    reg_loc: Dict[Tuple[int, str], str] = {}
    for t, thread in enumerate(test.program.threads):
        for instr in thread.instructions:
            if isinstance(instr, Ld):
                dst = instr.dst if isinstance(instr.dst, tuple) else (instr.dst,)
                for name in dst:
                    reg_loc[(t, name)] = instr.loc
            elif isinstance(instr, Atom):
                reg_loc[(t, instr.dst)] = instr.loc

    def remap(atom: Condition) -> Optional[Condition]:
        if isinstance(atom, MemEq):
            per_loc = mapping.get(atom.loc, {})
            if atom.value == 0:
                return atom
            if atom.value in per_loc:
                return MemEq(atom.loc, per_loc[atom.value])
            return None  # value with no producing write: bail out
        if isinstance(atom, RegEq):
            loc = reg_loc.get((atom.thread_index, atom.reg))
            if loc is None:
                return None
            per_loc = mapping.get(loc, {})
            if atom.value == 0:
                return atom
            if atom.value in per_loc:
                return RegEq(atom.thread_index, atom.reg, per_loc[atom.value])
            return None
        return atom

    cond = _map_condition(test.condition, remap)
    if cond is None:
        return None
    return _rebuild(test, threads, cond)


def _weakened_instruction(instr: Instruction) -> Iterator[Instruction]:
    """Strictly weaker variants of one instruction (may be invalid —
    callers build the program inside try/except)."""
    if getattr(instr, "volatile", False):
        return
    sem = getattr(instr, "sem", None)
    scope = getattr(instr, "scope", None)
    if sem in _SEM_WEAKER:
        weaker = _SEM_WEAKER[sem]
        try:
            if weaker is Sem.WEAK:
                yield replace(instr, sem=weaker, scope=None)
            else:
                yield replace(instr, sem=weaker)
        except ValueError:
            pass
    if scope in _SCOPE_NARROWER:
        try:
            yield replace(instr, scope=_SCOPE_NARROWER[scope])
        except ValueError:
            pass


def _candidates(test: LitmusTest) -> Iterator[LitmusTest]:
    """Every single-step shrink of ``test``, smallest-first."""
    for drop in range(len(test.program.threads)):
        candidate = _without_thread(test, drop)
        if candidate is not None:
            yield candidate
    for thread, index, _ in _instructions(test.program):
        candidate = _without_instruction(test, thread, index)
        if candidate is not None:
            yield candidate
    for cond in _weakened_conditions(test.condition):
        yield replace(test, condition=cond)
    candidate = _canonical_values(test)
    if candidate is not None:
        yield candidate
    for thread, index, instr in _instructions(test.program):
        for weaker in _weakened_instruction(instr):
            target = test.program.threads[thread]
            instructions = list(target.instructions)
            instructions[index] = weaker
            threads = list(test.program.threads)
            try:
                threads[thread] = replace(
                    target, instructions=tuple(instructions)
                )
            except ValueError:
                continue
            candidate = _rebuild(test, threads, test.condition)
            if candidate is not None:
                yield candidate


# ----------------------------------------------------------------------
# the greedy loop
# ----------------------------------------------------------------------

def shrink(
    test: LitmusTest,
    still_fails: Callable[[LitmusTest], bool],
    max_attempts: int = 2000,
) -> ShrinkResult:
    """Minimize ``test`` while ``still_fails`` holds.

    Greedy first-improvement search: in each pass the candidates are
    tried in a fixed order and the first strictly-cheaper one that still
    fails is adopted; the search ends when a whole pass adopts nothing
    (or after ``max_attempts`` predicate calls).  The input test is
    assumed failing — callers verify that before shrinking.

    A predicate raising :class:`EngineCrash` (or any other exception)
    marks the candidate as *crashing*, which is different from "the
    discrepancy is gone": the candidate is not adopted, the best
    pre-crash repro is kept, and the crash is counted and detailed on
    the result so callers can surface it — an engine that crashes while
    shrinking used to be silently indistinguishable from a clean
    non-repro.
    """
    current = test
    current_cost = cost(test)
    steps = 0
    attempts = 0
    crashes = 0
    crash_details: List[str] = []
    improved = True
    while improved and attempts < max_attempts:
        improved = False
        for candidate in _candidates(current):
            candidate_cost = cost(candidate)
            if candidate_cost >= current_cost:
                continue
            if attempts >= max_attempts:
                break
            attempts += 1
            try:
                failing = still_fails(candidate)
            except EngineCrash as crash:
                crashes += 1
                if len(crash_details) < 10:
                    crash_details.append(crash.detail)
                continue
            except Exception as exc:  # noqa: BLE001 — an unexpected predicate failure is also a crash
                crashes += 1
                if len(crash_details) < 10:
                    crash_details.append(f"{type(exc).__name__}: {exc}")
                continue
            if failing:
                current = candidate
                current_cost = candidate_cost
                steps += 1
                improved = True
                break
    return ShrinkResult(
        test=current,
        steps=steps,
        attempts=attempts,
        crashes=crashes,
        crash_details=tuple(crash_details),
    )
