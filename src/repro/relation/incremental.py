"""Incremental transitive closure with rollback, for staged enumeration.

The oriented-order enumerators (:mod:`repro.search.posets`) historically
rebuilt a full Warshall closure per candidate orientation: with ``k``
undecided pairs, the ``2^k`` leaves each paid ``O(n^3)``.  But the staged
search extends a *prefix* one edge at a time, and single-edge closure
updates are ``O(n^2)`` words: after adding ``i -> j`` to a transitively
closed relation, the new closure adds exactly
``(pred(i) ∪ {i}) × (succ(j) ∪ {j})``.

:class:`IncrementalClosure` maintains the closed row masks across a
depth-first orientation search, with a journal-based rollback stack
(``push``/``pop``) matching the rf → valuation → sc → co staging, so
backtracking one decision undoes exactly the rows that decision touched.
The structure also detects cycles *eagerly*: an edge whose target already
reaches its source is rejected before any mutation, pruning the whole
subtree that per-leaf Warshall would have enumerated and discarded.

Acyclicity is an invariant: rows are only ever the closure of an
irreflexive seed plus accepted (cycle-free) edges, so no diagonal bit can
appear.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple


class IncrementalClosure:
    """Exact transitive closure of a growing edge set, with rollback.

    ``rows[i]`` has bit ``j`` set iff ``i`` reaches ``j`` (same encoding
    as :class:`~repro.relation.bitrel.BitRel`).  Seed ``rows`` must
    already be transitively closed and irreflexive — in practice the
    ``.closure()`` of the forced edges the orientation search starts
    from.
    """

    __slots__ = ("n", "rows", "_journal", "_marks")

    def __init__(self, n: int, rows: Iterable[int]):
        self.n = n
        self.rows: List[int] = list(rows)
        if len(self.rows) != n:
            raise ValueError(f"expected {n} rows, got {len(self.rows)}")
        self._journal: List[Tuple[int, int]] = []
        self._marks: List[int] = []

    def push(self) -> None:
        """Open a rollback scope (one enumeration decision)."""
        self._marks.append(len(self._journal))

    def pop(self) -> None:
        """Undo every row mutation since the matching :meth:`push`."""
        mark = self._marks.pop()
        journal = self._journal
        rows = self.rows
        while len(journal) > mark:
            k, old = journal.pop()
            rows[k] = old

    def add(self, i: int, j: int) -> bool:
        """Add edge ``i -> j`` and re-close; False if it closes a cycle.

        On rejection nothing is mutated, so the caller's ``pop`` stays
        balanced whether or not the edge was accepted.
        """
        rows = self.rows
        if rows[i] >> j & 1:
            return True  # already implied; closure unchanged
        new = rows[j] | (1 << j)
        if new >> i & 1:
            return False  # j (or j itself == i) reaches i: cycle
        ibit = 1 << i
        journal = self._journal
        for k in range(self.n):
            rk = rows[k]
            if k == i or rk & ibit:
                add_bits = new & ~rk
                if add_bits:
                    journal.append((k, rk))
                    rows[k] = rk | add_bits
        return True
