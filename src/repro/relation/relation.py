"""Finite relations over hashable atoms.

This module is the mathematical foundation of the whole library.  Memory
model relations (``po``, ``rf``, ``co``, ``cause``, ``hb``, ...) are finite
binary relations over event atoms, and the axioms of the paper are assertions
(acyclicity, irreflexivity, emptiness, inclusion) about expressions built
from them.

:class:`Relation` stores a frozen set of equal-arity tuples.  It supports the
operator vocabulary of Alloy / herd "cat" models:

* union ``|``, intersection ``&``, difference ``-``
* relational join ``a.join(b)`` (Alloy dot join: drop the matched column)
* transpose (converse) ``~r`` via :meth:`transpose`
* transitive closure ``^r`` via :meth:`closure` and reflexive-transitive
  closure via :meth:`reflexive_closure`
* domain/range restriction, used to encode Alloy's ``[s] ; r ; [t]``

Unary relations double as sets; :meth:`Relation.iden_over` builds the
``[s]`` bracket operator (the identity restricted to a set).
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Hashable, Iterable, Iterator
from typing import Optional

Atom = Hashable
Tuple_ = tuple


class Relation:
    """An immutable finite relation: a set of equal-arity tuples of atoms.

    The empty relation has indeterminate arity and composes with anything;
    this mirrors Alloy's ``none`` and avoids arity bookkeeping at call sites
    that build relations incrementally.
    """

    __slots__ = ("_tuples", "_arity", "_hash")

    def __init__(self, tuples: Iterable[tuple] = (), arity: Optional[int] = None):
        tups = frozenset(tuple(t) for t in tuples)
        arities = {len(t) for t in tups}
        if len(arities) > 1:
            raise ValueError(f"mixed arities in relation: {sorted(arities)}")
        if arities:
            found = arities.pop()
            if arity is not None and arity != found:
                raise ValueError(f"declared arity {arity} but tuples have arity {found}")
            arity = found
        self._tuples = tups
        self._arity = arity
        self._hash: Optional[int] = None

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def _make(cls, tups: frozenset, arity: Optional[int]) -> "Relation":
        """Internal fast constructor: ``tups`` must already be a frozenset
        of equal-arity tuples matching ``arity`` (``None`` iff empty).
        Skips the validation scan; used by kernel-conversion hot paths."""
        self = object.__new__(cls)
        self._tuples = tups
        self._arity = arity
        self._hash = None
        return self

    @classmethod
    def empty(cls, arity: Optional[int] = None) -> "Relation":
        """The empty relation (optionally with a declared arity)."""
        return cls((), arity=arity)

    @classmethod
    def pairs(cls, pairs: Iterable[tuple]) -> "Relation":
        """Build a binary relation from an iterable of 2-tuples."""
        rel = cls(pairs)
        if rel._arity not in (None, 2):
            raise ValueError("pairs() requires 2-tuples")
        return rel

    @classmethod
    def set_of(cls, atoms: Iterable[Atom]) -> "Relation":
        """Build a unary relation (a set) from an iterable of atoms."""
        return cls((a,) for a in atoms)

    @classmethod
    def identity(cls, atoms: Iterable[Atom]) -> "Relation":
        """The identity relation over ``atoms``."""
        return cls((a, a) for a in atoms)

    @classmethod
    def total_order(cls, ordered: Iterable[Atom]) -> "Relation":
        """The strict total order induced by the given atom sequence."""
        seq = list(ordered)
        return cls((a, b) for i, a in enumerate(seq) for b in seq[i + 1 :])

    @classmethod
    def from_successor(cls, succ: dict) -> "Relation":
        """Build a binary relation from an adjacency mapping atom -> iterable."""
        return cls((a, b) for a, bs in succ.items() for b in bs)

    def same_kind(self, pairs: Iterable[tuple]) -> "Relation":
        """A relation of the same representation from explicit pairs.

        Kernel-polymorphic constructor: code handed either a
        :class:`Relation` or a :class:`~repro.relation.bitrel.BitRel` can
        build compatible values without knowing which it holds.
        """
        return Relation(pairs)

    # ------------------------------------------------------------------
    # basic protocol
    # ------------------------------------------------------------------
    @property
    def arity(self) -> Optional[int]:
        """The tuple arity, or ``None`` for the (polymorphic) empty relation."""
        return self._arity

    @property
    def tuples(self) -> frozenset:
        """The underlying frozen set of tuples."""
        return self._tuples

    def __len__(self) -> int:
        return len(self._tuples)

    def __bool__(self) -> bool:
        return bool(self._tuples)

    def __iter__(self) -> Iterator[tuple]:
        return iter(self._tuples)

    def __contains__(self, item) -> bool:
        return tuple(item) in self._tuples

    def __eq__(self, other) -> bool:
        if not isinstance(other, Relation):
            return NotImplemented
        return self._tuples == other._tuples

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(self._tuples)
        return self._hash

    def __repr__(self) -> str:
        preview = sorted(map(repr, self._tuples))
        if len(preview) > 8:
            preview = preview[:8] + ["..."]
        return f"Relation({{{', '.join(preview)}}})"

    # ------------------------------------------------------------------
    # set algebra
    # ------------------------------------------------------------------
    def _check_compatible(self, other: "Relation") -> None:
        if (
            self._arity is not None
            and other._arity is not None
            and self._arity != other._arity
        ):
            raise ValueError(f"arity mismatch: {self._arity} vs {other._arity}")

    def __or__(self, other: "Relation") -> "Relation":
        self._check_compatible(other)
        return Relation(self._tuples | other._tuples)

    def __and__(self, other: "Relation") -> "Relation":
        self._check_compatible(other)
        return Relation(self._tuples & other._tuples)

    def __sub__(self, other: "Relation") -> "Relation":
        self._check_compatible(other)
        return Relation(self._tuples - other._tuples)

    def issubset(self, other: "Relation") -> bool:
        """Whether every tuple of this relation appears in ``other``."""
        return self._tuples <= other._tuples

    # ------------------------------------------------------------------
    # relational algebra
    # ------------------------------------------------------------------
    def join(self, other: "Relation") -> "Relation":
        """Alloy dot join: match last column of self with first of other.

        For binary relations this is relational composition ``self ; other``.
        Joining a set (arity 1) with a binary relation projects the image.
        """
        if not self or not other:
            arity = None
            if self._arity is not None and other._arity is not None:
                arity = self._arity + other._arity - 2
                if arity < 1:
                    raise ValueError("join would produce arity 0")
            return Relation.empty(arity)
        if self._arity + other._arity - 2 < 1:
            raise ValueError("join would produce arity 0")
        by_first: dict = defaultdict(list)
        for t in other._tuples:
            by_first[t[0]].append(t[1:])
        out = set()
        for t in self._tuples:
            for rest in by_first.get(t[-1], ()):
                out.add(t[:-1] + rest)
        return Relation(out)

    def compose(self, *others: "Relation") -> "Relation":
        """Relational composition ``self ; r1 ; r2 ; ...`` (binary chaining)."""
        result = self
        for other in others:
            result = result.join(other)
        return result

    def transpose(self) -> "Relation":
        """The converse relation (binary only)."""
        if self._arity not in (None, 2):
            raise ValueError("transpose requires a binary relation")
        return Relation((b, a) for a, b in self._tuples)

    def product(self, other: "Relation") -> "Relation":
        """Cartesian product (Alloy's ``->``)."""
        if not self or not other:
            return Relation.empty()
        return Relation(s + t for s in self._tuples for t in other._tuples)

    def domain(self) -> "Relation":
        """The set of first components."""
        return Relation((t[0],) for t in self._tuples)

    def range(self) -> "Relation":
        """The set of last components."""
        return Relation((t[-1],) for t in self._tuples)

    def field(self) -> "Relation":
        """All atoms mentioned anywhere in the relation (as a set)."""
        return Relation((a,) for t in self._tuples for a in t)

    def restrict_domain(self, atoms: "Relation") -> "Relation":
        """Keep tuples whose first component lies in the given set."""
        keep = {t[0] for t in atoms._tuples}
        return Relation(t for t in self._tuples if t[0] in keep)

    def restrict_range(self, atoms: "Relation") -> "Relation":
        """Keep tuples whose last component lies in the given set."""
        keep = {t[0] for t in atoms._tuples}
        return Relation(t for t in self._tuples if t[-1] in keep)

    def restrict(self, domain: "Relation", range_: "Relation") -> "Relation":
        """``[domain] ; r ; [range_]`` in axiomatic-model notation."""
        return self.restrict_domain(domain).restrict_range(range_)

    def filter(self, predicate) -> "Relation":
        """Keep tuples satisfying ``predicate(tuple)``."""
        return Relation(t for t in self._tuples if predicate(t))

    def map(self, fn) -> "Relation":
        """Apply ``fn`` to every tuple."""
        return Relation(fn(t) for t in self._tuples)

    # ------------------------------------------------------------------
    # closures (binary)
    # ------------------------------------------------------------------
    def _require_binary(self, op: str) -> None:
        if self._arity not in (None, 2):
            raise ValueError(f"{op} requires a binary relation")

    def closure(self) -> "Relation":
        """The transitive closure ``r+``."""
        self._require_binary("closure")
        succ: dict = defaultdict(set)
        for a, b in self._tuples:
            succ[a].add(b)
        out = set()
        for start in list(succ):
            seen: set = set()
            stack = list(succ[start])
            while stack:
                node = stack.pop()
                if node in seen:
                    continue
                seen.add(node)
                stack.extend(succ.get(node, ()))
            out.update((start, b) for b in seen)
        return Relation(out)

    def reflexive_closure(self, universe: Iterable[Atom]) -> "Relation":
        """``r ∪ iden`` over the given universe."""
        self._require_binary("reflexive_closure")
        return self | Relation.identity(universe)

    def reflexive_transitive_closure(self, universe: Iterable[Atom]) -> "Relation":
        """``r*`` over the given universe."""
        return self.closure() | Relation.identity(universe)

    def optional(self, universe: Iterable[Atom]) -> "Relation":
        """``r?`` — reflexive closure, the common axiomatic-model shorthand."""
        return self.reflexive_closure(universe)

    # ------------------------------------------------------------------
    # order-theoretic predicates (binary)
    # ------------------------------------------------------------------
    def is_empty(self) -> bool:
        """Whether the relation has no tuples."""
        return not self._tuples

    def is_irreflexive(self) -> bool:
        """Whether no atom is related to itself."""
        return all(t[0] != t[-1] for t in self._tuples)

    def is_reflexive_over(self, atoms: Iterable[Atom]) -> bool:
        """Whether every atom in ``atoms`` is related to itself."""
        return all((a, a) in self._tuples for a in atoms)

    def is_symmetric(self) -> bool:
        """Whether the relation equals its converse."""
        self._require_binary("is_symmetric")
        return all((b, a) in self._tuples for a, b in self._tuples)

    def is_transitive(self) -> bool:
        """Whether the relation is transitively closed."""
        self._require_binary("is_transitive")
        succ: dict = defaultdict(set)
        for a, b in self._tuples:
            succ[a].add(b)
        return all(
            (a, c) in self._tuples
            for a, b in self._tuples
            for c in succ.get(b, ())
        )

    def is_acyclic(self) -> bool:
        """Whether the relation has no (non-empty) cycle."""
        return self.find_cycle() is None

    def is_strict_partial_order(self) -> bool:
        """Irreflexive + transitive (hence acyclic)."""
        return self.is_irreflexive() and self.is_transitive()

    def is_total_over(self, atoms: Iterable[Atom]) -> bool:
        """Whether every distinct pair drawn from ``atoms`` is related some way."""
        atom_list = list(atoms)
        return all(
            (a, b) in self._tuples or (b, a) in self._tuples
            for i, a in enumerate(atom_list)
            for b in atom_list[i + 1 :]
        )

    def find_cycle(self) -> Optional[list]:
        """Return some cycle as a list of atoms ``[a0, a1, ..., a0]``, or None.

        Used to produce human-readable diagnostics when an axiom such as
        ``acyclic(...)`` fails on a candidate execution.
        """
        self._require_binary("find_cycle")
        succ: dict = defaultdict(list)
        for a, b in self._tuples:
            succ[a].append(b)
        WHITE, GRAY, BLACK = 0, 1, 2
        color: dict = defaultdict(int)
        parent: dict = {}
        for root in list(succ):
            if color[root] != WHITE:
                continue
            stack = [(root, iter(succ[root]))]
            color[root] = GRAY
            while stack:
                node, it = stack[-1]
                advanced = False
                for nxt in it:
                    if color[nxt] == GRAY:
                        cycle = [nxt, node]
                        cur = node
                        while cur != nxt:
                            cur = parent[cur]
                            cycle.append(cur)
                        cycle.reverse()
                        return cycle
                    if color[nxt] == WHITE:
                        color[nxt] = GRAY
                        parent[nxt] = node
                        stack.append((nxt, iter(succ.get(nxt, []))))
                        advanced = True
                        break
                if not advanced:
                    color[node] = BLACK
                    stack.pop()
        return None

    def topological_order(self) -> list:
        """A topological order of the atoms in the relation's field.

        Raises :class:`ValueError` if the relation is cyclic.
        """
        self._require_binary("topological_order")
        succ: dict = defaultdict(set)
        indeg: dict = defaultdict(int)
        nodes = set()
        for a, b in self._tuples:
            nodes.add(a)
            nodes.add(b)
            if b not in succ[a]:
                succ[a].add(b)
                indeg[b] += 1
        ready = sorted((n for n in nodes if indeg[n] == 0), key=repr)
        out = []
        while ready:
            node = ready.pop()
            out.append(node)
            for nxt in sorted(succ.get(node, ()), key=repr):
                indeg[nxt] -= 1
                if indeg[nxt] == 0:
                    ready.append(nxt)
        if len(out) != len(nodes):
            raise ValueError("relation is cyclic; no topological order exists")
        return out


def iden_over(atoms: Relation) -> Relation:
    """The ``[s]`` bracket operator: identity restricted to a set."""
    return Relation((t[0], t[0]) for t in atoms.tuples)


def acyclic(rel: Relation) -> bool:
    """Alias for :meth:`Relation.is_acyclic`, matching axiom notation."""
    return rel.is_acyclic()


def irreflexive(rel: Relation) -> bool:
    """Alias for :meth:`Relation.is_irreflexive`, matching axiom notation."""
    return rel.is_irreflexive()
