"""Dense bitset relations over a frozen atom universe.

:class:`~repro.relation.relation.Relation` stores frozensets of tuples —
flexible, but every join/closure re-hashes event objects millions of times
in the enumerative engines.  This module provides the herd-style dense
alternative: freeze the execution's event list into a :class:`Universe`
(atom → row index), then represent

* a **set** of atoms as one Python int bitmask (:class:`BitSet`), and
* a **binary relation** as a tuple of per-row bitmasks (:class:`BitRel`),
  ``rows[i]`` holding the successor mask of atom ``i``.

Union/intersection/difference become single bitwise ops, composition a
masked row-OR, transpose a bit transposition, and transitive closure a
Warshall sweep over bitrows.  Both classes mirror the :class:`Relation`
method vocabulary used by :func:`repro.lang.eval_expr`, so the cat
evaluator runs unchanged over either representation, and lossless
converters (`from_relation` / `to_relation`) bridge the two at the
engine boundaries.

Arity discipline: ``BitSet.arity == 1`` and ``BitRel.arity == 2`` are
fixed (unlike the polymorphic empty ``Relation``); mixing the two kinds
in a set operation raises, exactly like a ``Relation`` arity mismatch.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from .relation import Atom, Relation


def _bits(mask: int) -> Iterator[int]:
    """Indices of the set bits of ``mask``, ascending."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


class Universe:
    """A frozen, ordered atom list with O(1) atom → row-index lookup.

    Build one per execution (the event tuple) and share it across every
    relation of that execution; operations between relations over
    *different* universes raise.
    """

    __slots__ = ("atoms", "index", "n", "full")

    def __init__(self, atoms: Iterable[Atom]):
        self.atoms: Tuple[Atom, ...] = tuple(atoms)
        self.index: Dict[Atom, int] = {a: i for i, a in enumerate(self.atoms)}
        if len(self.index) != len(self.atoms):
            raise ValueError("universe atoms must be distinct")
        self.n = len(self.atoms)
        self.full = (1 << self.n) - 1 if self.n else 0

    def __len__(self) -> int:
        return self.n

    def __repr__(self) -> str:
        return f"<Universe of {self.n} atoms>"


def _same_universe(a, b) -> None:
    if a.u is not b.u:
        raise ValueError("operands live in different universes")


class BitSet:
    """A set of universe atoms as one bitmask (the arity-1 kernel value)."""

    __slots__ = ("u", "mask")
    arity = 1

    def __init__(self, u: Universe, mask: int = 0):
        self.u = u
        self.mask = mask & u.full

    # -- constructors / converters ------------------------------------
    @classmethod
    def from_atoms(cls, u: Universe, atoms: Iterable[Atom]) -> "BitSet":
        mask = 0
        for a in atoms:
            mask |= 1 << u.index[a]
        return cls(u, mask)

    @classmethod
    def from_relation(cls, u: Universe, rel: Relation) -> "BitSet":
        if rel.arity not in (None, 1):
            raise ValueError(f"cannot build a BitSet from arity {rel.arity}")
        return cls.from_atoms(u, (t[0] for t in rel.tuples))

    def to_relation(self) -> Relation:
        return Relation.set_of(self.u.atoms[i] for i in _bits(self.mask))

    # -- basic protocol ------------------------------------------------
    def __len__(self) -> int:
        return self.mask.bit_count()

    def __bool__(self) -> bool:
        return bool(self.mask)

    def __iter__(self) -> Iterator[tuple]:
        return ((self.u.atoms[i],) for i in _bits(self.mask))

    def __contains__(self, item) -> bool:
        (atom,) = tuple(item)
        i = self.u.index.get(atom)
        return i is not None and bool(self.mask >> i & 1)

    def __eq__(self, other) -> bool:
        if not isinstance(other, BitSet):
            return NotImplemented
        return self.u is other.u and self.mask == other.mask

    def __hash__(self) -> int:
        return hash((id(self.u), self.mask))

    def __repr__(self) -> str:
        return f"BitSet({sorted(map(repr, (t[0] for t in self)))})"

    # -- set algebra ---------------------------------------------------
    def __or__(self, other: "BitSet") -> "BitSet":
        if not isinstance(other, BitSet):
            raise ValueError("arity mismatch: 1 vs 2")
        _same_universe(self, other)
        return BitSet(self.u, self.mask | other.mask)

    def __and__(self, other: "BitSet") -> "BitSet":
        if not isinstance(other, BitSet):
            raise ValueError("arity mismatch: 1 vs 2")
        _same_universe(self, other)
        return BitSet(self.u, self.mask & other.mask)

    def __sub__(self, other: "BitSet") -> "BitSet":
        if not isinstance(other, BitSet):
            raise ValueError("arity mismatch: 1 vs 2")
        _same_universe(self, other)
        return BitSet(self.u, self.mask & ~other.mask)

    def issubset(self, other: "BitSet") -> bool:
        if not isinstance(other, BitSet):
            raise ValueError("arity mismatch: 1 vs 2")
        _same_universe(self, other)
        return not (self.mask & ~other.mask)

    def is_empty(self) -> bool:
        return not self.mask

    # -- relational algebra -------------------------------------------
    def join(self, other: "BitRel") -> "BitSet":
        """Alloy dot join set.rel: the image of this set under ``other``."""
        if not isinstance(other, BitRel):
            raise ValueError("BitSet.join expects a BitRel")
        _same_universe(self, other)
        out = 0
        rows = other.rows
        for i in _bits(self.mask):
            out |= rows[i]
        return BitSet(self.u, out)

    def product(self, other: "BitSet") -> "BitRel":
        """Cartesian product (Alloy's ``->``), yielding a binary relation."""
        if not isinstance(other, BitSet):
            raise ValueError("BitSet.product expects a BitSet")
        _same_universe(self, other)
        rows = [other.mask if self.mask >> i & 1 else 0 for i in range(self.u.n)]
        return BitRel(self.u, rows)

    def diag(self) -> "BitRel":
        """The ``[s]`` bracket: identity restricted to this set."""
        rows = [(1 << i) if self.mask >> i & 1 else 0 for i in range(self.u.n)]
        return BitRel(self.u, rows)


class BitRel:
    """A binary relation as per-row successor bitmasks (the arity-2 kernel
    value); ``rows[i]`` has bit ``j`` set iff (atoms[i], atoms[j]) holds."""

    __slots__ = ("u", "rows")
    arity = 2

    def __init__(self, u: Universe, rows: Iterable[int] = ()):
        self.u = u
        rows = tuple(rows)
        if not rows:
            rows = (0,) * u.n
        elif len(rows) != u.n:
            raise ValueError(f"expected {u.n} rows, got {len(rows)}")
        self.rows = rows

    @classmethod
    def _make(cls, u: Universe, rows: Tuple[int, ...]) -> "BitRel":
        """Internal fast constructor: ``rows`` must already be a tuple of
        exactly ``u.n`` row masks (algebra results always are)."""
        self = object.__new__(cls)
        self.u = u
        self.rows = rows
        return self

    # -- constructors / converters ------------------------------------
    @classmethod
    def from_pairs(cls, u: Universe, pairs: Iterable[tuple]) -> "BitRel":
        rows = [0] * u.n
        index = u.index
        for a, b in pairs:
            rows[index[a]] |= 1 << index[b]
        return cls(u, rows)

    @classmethod
    def from_relation(cls, u: Universe, rel: Relation) -> "BitRel":
        if rel.arity not in (None, 2):
            raise ValueError(f"cannot build a BitRel from arity {rel.arity}")
        return cls.from_pairs(u, rel.tuples)

    def to_relation(self) -> Relation:
        tups = frozenset(self)
        return Relation._make(tups, 2 if tups else None)

    def same_kind(self, pairs: Iterable[tuple]) -> "BitRel":
        """A relation of the same representation from explicit pairs."""
        return BitRel.from_pairs(self.u, pairs)

    @classmethod
    def identity(cls, u: Universe) -> "BitRel":
        return cls(u, [1 << i for i in range(u.n)])

    # -- basic protocol ------------------------------------------------
    def __len__(self) -> int:
        return sum(row.bit_count() for row in self.rows)

    def __bool__(self) -> bool:
        return any(self.rows)

    def __iter__(self) -> Iterator[tuple]:
        atoms = self.u.atoms
        for i, row in enumerate(self.rows):
            a = atoms[i]
            while row:
                low = row & -row
                yield (a, atoms[low.bit_length() - 1])
                row ^= low

    def __contains__(self, item) -> bool:
        a, b = tuple(item)
        index = self.u.index
        i = index.get(a)
        j = index.get(b)
        return i is not None and j is not None and bool(self.rows[i] >> j & 1)

    def __eq__(self, other) -> bool:
        if not isinstance(other, BitRel):
            return NotImplemented
        return self.u is other.u and self.rows == other.rows

    def __hash__(self) -> int:
        return hash((id(self.u), self.rows))

    def __repr__(self) -> str:
        preview = sorted(map(repr, self))
        if len(preview) > 8:
            preview = preview[:8] + ["..."]
        return f"BitRel({{{', '.join(preview)}}})"

    # -- set algebra ---------------------------------------------------
    def __or__(self, other: "BitRel") -> "BitRel":
        if not isinstance(other, BitRel):
            raise ValueError("arity mismatch: 2 vs 1")
        _same_universe(self, other)
        return BitRel._make(self.u, tuple(map(int.__or__, self.rows, other.rows)))

    def __and__(self, other: "BitRel") -> "BitRel":
        if not isinstance(other, BitRel):
            raise ValueError("arity mismatch: 2 vs 1")
        _same_universe(self, other)
        return BitRel._make(self.u, tuple(map(int.__and__, self.rows, other.rows)))

    def __sub__(self, other: "BitRel") -> "BitRel":
        if not isinstance(other, BitRel):
            raise ValueError("arity mismatch: 2 vs 1")
        _same_universe(self, other)
        return BitRel._make(
            self.u, tuple(a & ~b for a, b in zip(self.rows, other.rows))
        )

    def issubset(self, other: "BitRel") -> bool:
        if not isinstance(other, BitRel):
            raise ValueError("arity mismatch: 2 vs 1")
        _same_universe(self, other)
        return all(not (a & ~b) for a, b in zip(self.rows, other.rows))

    def is_empty(self) -> bool:
        return not any(self.rows)

    # -- relational algebra -------------------------------------------
    def join(self, other) -> object:
        """Alloy dot join: rel.rel is composition, rel.set is the preimage."""
        if isinstance(other, BitRel):
            _same_universe(self, other)
            orows = other.rows
            out: List[int] = []
            append = out.append
            for row in self.rows:
                acc = 0
                while row:
                    low = row & -row
                    acc |= orows[low.bit_length() - 1]
                    row ^= low
                append(acc)
            return BitRel._make(self.u, tuple(out))
        if isinstance(other, BitSet):
            _same_universe(self, other)
            mask = other.mask
            out_mask = 0
            for i, row in enumerate(self.rows):
                if row & mask:
                    out_mask |= 1 << i
            return BitSet(self.u, out_mask)
        raise ValueError("BitRel.join expects a BitRel or BitSet")

    def compose(self, *others: "BitRel") -> "BitRel":
        result = self
        for other in others:
            result = result.join(other)
        return result

    def transpose(self) -> "BitRel":
        cols = [0] * self.u.n
        for i, row in enumerate(self.rows):
            bit = 1 << i
            while row:
                low = row & -row
                cols[low.bit_length() - 1] |= bit
                row ^= low
        return BitRel._make(self.u, tuple(cols))

    def domain(self) -> BitSet:
        mask = 0
        for i, row in enumerate(self.rows):
            if row:
                mask |= 1 << i
        return BitSet(self.u, mask)

    def range(self) -> BitSet:
        mask = 0
        for row in self.rows:
            mask |= row
        return BitSet(self.u, mask)

    def field(self) -> BitSet:
        return self.domain() | self.range()

    def restrict_domain(self, atoms: BitSet) -> "BitRel":
        _same_universe(self, atoms)
        mask = atoms.mask
        return BitRel._make(
            self.u,
            tuple(row if mask >> i & 1 else 0 for i, row in enumerate(self.rows)),
        )

    def restrict_range(self, atoms: BitSet) -> "BitRel":
        _same_universe(self, atoms)
        mask = atoms.mask
        return BitRel._make(self.u, tuple(row & mask for row in self.rows))

    def restrict(self, domain: BitSet, range_: BitSet) -> "BitRel":
        return self.restrict_domain(domain).restrict_range(range_)

    # -- closures ------------------------------------------------------
    def closure(self) -> "BitRel":
        """Transitive closure ``r+`` by Warshall over bitrows."""
        rows = list(self.rows)
        for k in range(self.u.n):
            rk = rows[k]
            if not rk:
                continue
            kbit = 1 << k
            for i in range(self.u.n):
                if rows[i] & kbit:
                    rows[i] |= rk
        return BitRel._make(self.u, tuple(rows))

    def reflexive_closure(self, universe: Optional[Iterable[Atom]] = None) -> "BitRel":
        """``r ∪ iden``; the universe argument (accepted for signature
        parity with :class:`Relation`) is implied by the frozen atom list."""
        return BitRel._make(
            self.u, tuple(row | (1 << i) for i, row in enumerate(self.rows))
        )

    def reflexive_transitive_closure(
        self, universe: Optional[Iterable[Atom]] = None
    ) -> "BitRel":
        return self.closure().reflexive_closure()

    def optional(self, universe: Optional[Iterable[Atom]] = None) -> "BitRel":
        return self.reflexive_closure()

    # -- predicates ----------------------------------------------------
    def is_irreflexive(self) -> bool:
        return all(not (row >> i & 1) for i, row in enumerate(self.rows))

    def is_acyclic(self) -> bool:
        return self.closure().is_irreflexive()

    def is_transitive(self) -> bool:
        return self.closure().rows == self.rows

    def is_total_over(self, atoms: Iterable[Atom]) -> bool:
        index = self.u.index
        ids = [index[a] for a in atoms]
        return all(
            self.rows[i] >> j & 1 or self.rows[j] >> i & 1
            for pos, i in enumerate(ids)
            for j in ids[pos + 1 :]
        )
