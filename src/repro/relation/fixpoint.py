"""Fixpoint combinators over relations.

Several memory-model relations are defined recursively — e.g. PTX
observation order ``obs := (morally_strong ∩ rf) ∪ (obs ; rmw ; obs)``
(paper §8.8.2) — and are computed here as least fixpoints.  All relations
are finite, so Kleene iteration terminates.
"""

from __future__ import annotations

from typing import Callable

from .relation import Relation


def least_fixpoint(
    step: Callable[[Relation], Relation], seed: Relation = Relation.empty()
) -> Relation:
    """Iterate ``r := step(r)`` from ``seed`` until the relation stabilises.

    ``step`` must be monotone (inflationary steps also work); on finite
    universes the iteration reaches the least fixpoint above ``seed``.
    """
    current = seed
    while True:
        nxt = step(current)
        if not current.tuples <= nxt.tuples:
            # Guard against accidental non-monotone steps, which would loop.
            nxt = nxt | current
        if nxt == current:
            return current
        current = nxt


def recursive_union(base: Relation, expand: Callable[[Relation], Relation]) -> Relation:
    """Least relation ``r`` with ``r = base ∪ expand(r)``."""
    return least_fixpoint(lambda r: base | expand(r), seed=base)
