"""Finite relational algebra: the substrate under every axiomatic model."""

from .bitrel import BitRel, BitSet, Universe
from .fixpoint import least_fixpoint, recursive_union
from .incremental import IncrementalClosure
from .relation import Relation, acyclic, iden_over, irreflexive

__all__ = [
    "BitRel",
    "BitSet",
    "IncrementalClosure",
    "Relation",
    "Universe",
    "acyclic",
    "iden_over",
    "irreflexive",
    "least_fixpoint",
    "recursive_union",
]
