"""Pinned generated litmus corpora, shared by tests and the matrix.

The length-4 external-edge corpus (``CORPUS4``) synthesises every
closing critical cycle over cross-thread communication edges under each
annotation variant — the classic named shapes (SB, MP, LB, 2+2W, ...)
the paper's generated suites revolve around.  It started life inside
``tests/test_generated_corpus.py``; the conformance matrix
(:mod:`repro.zoo.matrix`) runs the same corpus through every zoo model,
so the generator lives here and the test imports it back.

Generation is deterministic (cycle enumeration order × variant
declaration order), which the matrix goldens rely on.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

from .compare import VARIANTS
from .generator import CycleError, GeneratedTest, enumerate_cycles, generate

#: External-edge vocabulary for the length-4 corpus: all communication is
#: cross-thread, producing the classic named shapes (SB, MP, LB, 2+2W...)
#: rather than same-thread coherence noise.
EXT_VOCABULARY: Tuple[str, ...] = (
    "Rfe", "Fre", "Wse", "PodRR", "PodRW", "PodWR", "PodWW",
)


def corpus_length4() -> Iterator[Tuple[str, str, GeneratedTest]]:
    """Yield ``(cycle name, variant, generated test)`` for every
    length-4 external critical cycle under every annotation variant."""
    for cycle in enumerate_cycles(4, EXT_VOCABULARY):
        name = "+".join(edge.name for edge in cycle)
        for variant, kwargs in VARIANTS.items():
            try:
                generated = generate(cycle, **kwargs)
            except (CycleError, ValueError):
                continue
            yield name, variant, generated


def corpus4() -> List[Tuple[str, str, GeneratedTest]]:
    """The pinned length-4 corpus (48 instances), as a list."""
    return list(corpus_length4())
