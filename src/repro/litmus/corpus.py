"""Pinned generated litmus corpora, shared by tests and the matrix.

The length-4 external-edge corpus (``CORPUS4``) synthesises every
closing critical cycle over cross-thread communication edges under each
annotation variant — the classic named shapes (SB, MP, LB, 2+2W, ...)
the paper's generated suites revolve around.  It started life inside
``tests/test_generated_corpus.py``; the conformance matrix
(:mod:`repro.zoo.matrix`) runs the same corpus through every zoo model,
so the generator lives here and the test imports it back.

Generation is deterministic (cycle enumeration order × variant
declaration order), which the matrix goldens rely on.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterator, List, Optional, Tuple

from .compare import VARIANTS
from .generator import CycleError, GeneratedTest, enumerate_cycles, generate
from .test import LitmusTest

#: External-edge vocabulary for the length-4 corpus: all communication is
#: cross-thread, producing the classic named shapes (SB, MP, LB, 2+2W...)
#: rather than same-thread coherence noise.
EXT_VOCABULARY: Tuple[str, ...] = (
    "Rfe", "Fre", "Wse", "PodRR", "PodRW", "PodWR", "PodWW",
)


def corpus_length4() -> Iterator[Tuple[str, str, GeneratedTest]]:
    """Yield ``(cycle name, variant, generated test)`` for every
    length-4 external critical cycle under every annotation variant."""
    for cycle in enumerate_cycles(4, EXT_VOCABULARY):
        name = "+".join(edge.name for edge in cycle)
        for variant, kwargs in VARIANTS.items():
            try:
                generated = generate(cycle, **kwargs)
            except (CycleError, ValueError):
                continue
            yield name, variant, generated


def corpus4() -> List[Tuple[str, str, GeneratedTest]]:
    """The pinned length-4 corpus (48 instances), as a list."""
    return list(corpus_length4())


def find_regression_corpus(start: Optional[str] = None) -> Path:
    """Locate the committed ``tests/regression_corpus`` directory.

    Searches upward from ``start`` (default: the current directory) for
    a ``tests/regression_corpus/MANIFEST.json``, so the loader works
    from the repo root, from inside ``tests/``, and from any nested
    working directory of a checkout.
    """
    origin = Path(start) if start is not None else Path.cwd()
    for base in (origin, *origin.parents):
        candidate = base / "tests" / "regression_corpus"
        if (candidate / "MANIFEST.json").is_file():
            return candidate
    raise FileNotFoundError(
        "no tests/regression_corpus/MANIFEST.json found above "
        f"{origin} — run `ptxmm farm --corpus-out tests/regression_corpus` "
        "from a checkout to (re)generate the distilled corpus"
    )


def regression_corpus(
    directory: Optional[str] = None,
) -> List["LitmusTest"]:
    """Load the distilled regression corpus (committed by the farm).

    Returns the parsed tests in manifest order (sorted by name).  Every
    listed file must parse and match its recorded canonical-form hash —
    a mismatch means the corpus files were edited without regenerating
    the manifest, and is reported per file.  ``search_opts`` can't ride
    in litmus text, so the manifest carries them and the loader
    re-attaches them after hash verification.
    """
    import dataclasses
    import json

    from ..fuzz.harness import canonical_test_hash
    from .parser import parse_litmus
    from .serialize import _search_opts_from_obj

    target = (
        Path(directory) if directory is not None else find_regression_corpus()
    )
    manifest = json.loads((target / "MANIFEST.json").read_text())
    tests: List[LitmusTest] = []
    stale: List[str] = []
    for name, entry in sorted(manifest["tests"].items()):
        test = parse_litmus((target / entry["file"]).read_text())
        if canonical_test_hash(test) != entry["hash"]:
            stale.append(name)
        if entry.get("search_opts"):
            test = dataclasses.replace(
                test,
                search_opts=_search_opts_from_obj(entry["search_opts"]),
            )
        tests.append(test)
    if stale:
        raise ValueError(
            f"regression corpus files out of sync with MANIFEST.json: "
            f"{', '.join(stale)} — regenerate with ptxmm farm --corpus-out"
        )
    return tests
