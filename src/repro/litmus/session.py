"""Parallel suite execution with persistent result caching.

A :class:`Session` is the execution subsystem behind ``run_suite``,
``ptxmm suite`` and ``ptxmm compare``: it fans tasks out over a
``ProcessPoolExecutor`` (``jobs > 1``), applies the per-test wall-clock
timeout inside each worker, survives worker death with bounded retries,
consults the content-addressed result cache before solving anything, and
reassembles results in input order regardless of completion order.

Design notes:

* **IPC format** — workers receive serialized test payloads and return
  serialized results (:mod:`repro.litmus.serialize`), the same format
  the cache stores; nothing model-specific crosses the process
  boundary, so a worker crash cannot corrupt parent state.
* **Failure isolation** — a test that raises inside a worker (or after
  retries, one that keeps killing its worker) produces an ``ERROR``
  verdict; a test that exceeds the deadline produces ``TIMEOUT``.  One
  pathological test never takes down a sweep.
* **Determinism** — results are keyed by submission index; parallel,
  sequential, and cached runs of the same suite yield identical tuples
  (up to the ``elapsed`` timing field).
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..sat.solver import SolverStats
from ..schema import assert_schema
from ..search.ptx_search import EnumStats
from .cache import ResultCache, cache_key, default_cache_dir
from .config import RunConfig
from .runner import (
    LitmusResult,
    _warn_dropped,
    decide,
    decide_filtered,
    partition_opts,
)
from .serialize import (
    config_from_dict,
    config_to_dict,
    result_from_dict,
    test_from_dict,
    test_to_dict,
)
from .test import LitmusTest

# worker IPC payloads and cached results share one schema version; a
# half-bumped tree must fail here, not with mysterious worker errors
assert_schema("repro.litmus.session", cache=7)


@dataclass
class SessionStats:
    """Aggregate counters for everything a session has executed.

    Extends the per-solve :class:`SolverStats` reporting with the
    execution-subsystem view: cache traffic, timeouts, worker retries.
    """

    tasks: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    timeouts: int = 0
    errors: int = 0
    worker_retries: int = 0
    #: verdicts whose certificate passed the independent checker
    certified: int = 0
    #: verdicts whose certificate was REJECTED (each also counts an error:
    #: a failed check downgrades the verdict to ERROR)
    cert_failed: int = 0
    #: certify-mode verdicts with nothing checkable (enumerative fallback)
    cert_skipped: int = 0
    elapsed: float = 0.0
    #: summed SAT counters from every symbolic-engine result
    solver: SolverStats = field(default_factory=SolverStats)
    #: summed enumeration counters from every enumerative PTX result
    enum: EnumStats = field(default_factory=EnumStats)

    def format(self) -> str:
        """A compact one-line rendering for CLI/benchmark output."""
        line = (
            f"tasks={self.tasks} cache_hits={self.cache_hits} "
            f"cache_misses={self.cache_misses} timeouts={self.timeouts} "
            f"errors={self.errors} worker_retries={self.worker_retries} "
            f"certified={self.certified} cert_failed={self.cert_failed} "
            f"cert_skipped={self.cert_skipped} elapsed={self.elapsed:.3f}s"
        )
        if self.enum.rf_assignments:
            line += f"\nenum: {self.enum.format()}"
        return line


def _execute_task(payload: Dict) -> Dict:
    """Worker-side entry point: one serialized task in, one result out.

    Must stay a module-level function (it is pickled by reference into
    worker processes).  All exceptions are folded into an ``error``
    result so the worker survives for the next task.
    """
    test = test_from_dict(payload["test"])
    # the payload carries the *whole* serialized config: rebuilding from
    # a hand-picked field subset used to silently drop any config field
    # the subset didn't know about (e.g. engine knobs added later)
    config = config_from_dict(payload["config"])
    try:
        result = decide_filtered(test, config, dict(payload["opts"]))
    except Exception as exc:  # noqa: BLE001 — isolation is the point
        result = LitmusResult(
            test=test,
            model=config.model,
            observed=False,
            outcomes=frozenset(),
            status="error",
            detail=f"{type(exc).__name__}: {exc}",
        )
    return result.to_dict(include_test=False)


class Session:
    """A (re)usable execution context for litmus sweeps.

    Usage::

        with Session(RunConfig(jobs=4, timeout=10.0, use_cache=True)) as s:
            results = s.run_suite(SUITE)
            print(s.stats.format())

    The worker pool is created lazily on the first parallel call and
    reused across calls until :meth:`close` (or context exit).
    """

    def __init__(self, config: Optional[RunConfig] = None, **overrides):
        config = config if config is not None else RunConfig()
        if overrides:
            config = config.evolve(**overrides)
        self.config = config
        self.stats = SessionStats()
        self._executor: Optional[ProcessPoolExecutor] = None
        self._warned: set = set()
        self.cache: Optional[ResultCache] = None
        if config.use_cache:
            directory = config.cache_dir or default_cache_dir()
            self.cache = ResultCache(directory)

    # -- lifecycle -----------------------------------------------------

    @property
    def jobs(self) -> int:
        """The resolved worker count (``jobs=0`` means one per CPU)."""
        return self.config.jobs or (os.cpu_count() or 1)

    def _ensure_executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(max_workers=self.jobs)
        return self._executor

    def _discard_executor(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        self._discard_executor()

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- execution core ------------------------------------------------

    def run_tasks(
        self, tasks: Sequence[Tuple[LitmusTest, RunConfig]]
    ) -> List[LitmusResult]:
        """Run (test, config) tasks; results in input order.

        The scheduling pipeline per task: option validation (unknown
        options raise here, in the parent, before anything is
        submitted) → cache probe → local or pooled execution → cache
        store for completed results.
        """
        started = time.perf_counter()
        results: Dict[int, LitmusResult] = {}
        misses: Dict[int, Dict] = {}
        keys: Dict[int, str] = {}
        for index, (test, config) in enumerate(tasks):
            merged = dict(test.search_opts)
            merged.update(config.opts)
            kept, dropped = partition_opts(config.model, merged)
            _warn_dropped(config.model, dropped, self._warned)
            self.stats.tasks += 1
            if self.cache is not None:
                key = cache_key(
                    test, config.model, config.engine, kept,
                    certify=config.certify, kernel=config.kernel,
                )
                cached = self.cache.get(key, test)
                if cached is not None:
                    self.stats.cache_hits += 1
                    results[index] = cached
                    continue
                self.stats.cache_misses += 1
                keys[index] = key
            misses[index] = {
                "test": test_to_dict(test),
                "config": config_to_dict(config),
                "opts": kept,
            }
        if misses:
            if self.jobs <= 1:
                for index, payload in misses.items():
                    test, config = tasks[index]
                    results[index] = self._run_local(test, config)
            else:
                tests = {index: tasks[index][0] for index in misses}
                results.update(self._run_parallel(misses, tests))
        for index in keys:
            result = results[index]
            if result.status == "ok":
                self.cache.put(keys[index], result)
        for result in results.values():
            if result.status == "timeout":
                self.stats.timeouts += 1
            elif result.status == "error":
                self.stats.errors += 1
            if result.solver_stats is not None:
                self.stats.solver = self.stats.solver + result.solver_stats
            if result.enum_stats is not None:
                self.stats.enum = self.stats.enum + result.enum_stats
            certificate = result.certificate
            if certificate is not None:
                if certificate.verified:
                    self.stats.certified += 1
                elif certificate.failed:
                    self.stats.cert_failed += 1
                else:
                    self.stats.cert_skipped += 1
        self.stats.elapsed += time.perf_counter() - started
        return [results[index] for index in range(len(tasks))]

    def _run_local(self, test: LitmusTest, config: RunConfig) -> LitmusResult:
        """In-process execution with the same failure isolation as workers."""
        try:
            return decide(test, config, warned=self._warned)
        except Exception as exc:  # noqa: BLE001
            return LitmusResult(
                test=test,
                model=config.model,
                observed=False,
                outcomes=frozenset(),
                status="error",
                detail=f"{type(exc).__name__}: {exc}",
            )

    def _run_parallel(
        self, payloads: Dict[int, Dict], tests: Dict[int, LitmusTest]
    ) -> Dict[int, LitmusResult]:
        """Pooled execution with bounded retry-on-worker-death.

        A dead worker breaks the whole pool (``BrokenProcessPool``); the
        pool is rebuilt and unfinished tasks resubmitted, each at most
        ``config.max_attempts`` times, after which the task gets an
        ``ERROR`` result and the sweep moves on.
        """
        out: Dict[int, LitmusResult] = {}
        remaining = dict(payloads)
        executor = self._ensure_executor()
        futures = {
            executor.submit(_execute_task, payload): index
            for index, payload in remaining.items()
        }
        broken = False
        for future in as_completed(futures):
            index = futures[future]
            try:
                payload = future.result()
            except BrokenProcessPool:
                broken = True
                break
            except Exception as exc:  # noqa: BLE001 — e.g. pickling
                out[index] = self._crash_result(tests[index], remaining[index], exc)
                remaining.pop(index)
                continue
            out[index] = result_from_dict(payload, test=tests[index])
            remaining.pop(index)
        if broken:
            # harvest tasks that finished before the pool broke, then run
            # the rest one per fresh single-worker pool: the pathological
            # task is the only one whose pool keeps dying, so innocent
            # tasks still complete and only the killer is charged retries
            for future, index in futures.items():
                if index in remaining and future.done():
                    try:
                        payload = future.result()
                    except Exception:  # noqa: BLE001 — also broken
                        continue
                    out[index] = result_from_dict(payload, test=tests[index])
                    remaining.pop(index)
            self._discard_executor()
            self.stats.worker_retries += 1
            for index in sorted(remaining):
                out[index] = self._run_isolated(tests[index], remaining[index])
        return out

    def _run_isolated(self, test: LitmusTest, payload: Dict) -> LitmusResult:
        """Run one task in its own single-worker pool, with bounded retries."""
        attempts = 1  # the shared-pool pass that broke counts as one
        while attempts < self.config.max_attempts:
            attempts += 1
            with ProcessPoolExecutor(max_workers=1) as executor:
                try:
                    result = executor.submit(_execute_task, payload).result()
                except BrokenProcessPool:
                    self.stats.worker_retries += 1
                    continue
                except Exception as exc:  # noqa: BLE001
                    return self._crash_result(test, payload, exc)
                return result_from_dict(result, test=test)
        return self._crash_result(
            test,
            payload,
            RuntimeError(f"worker died {attempts} time(s) running this test"),
        )

    def _crash_result(
        self, test: LitmusTest, payload: Dict, exc: Exception
    ) -> LitmusResult:
        return LitmusResult(
            test=test,
            model=payload["config"]["model"],
            observed=False,
            outcomes=frozenset(),
            status="error",
            detail=f"{type(exc).__name__}: {exc}",
        )

    # -- public surface ------------------------------------------------

    def run(
        self, test: LitmusTest, config: Optional[RunConfig] = None
    ) -> LitmusResult:
        """Run one test under this session's (or the given) config."""
        return self.run_tasks([(test, config or self.config)])[0]

    def run_suite(
        self,
        tests: Sequence[LitmusTest],
        config: Optional[RunConfig] = None,
    ) -> Tuple[LitmusResult, ...]:
        """Run many tests; results in input order."""
        effective = config or self.config
        return tuple(self.run_tasks([(test, effective) for test in tests]))

    def compare(self, model_a: str, model_b: str, **kw):
        """Model-comparison search executed through this session.

        See :func:`repro.litmus.compare.distinguishing_tests` for the
        keyword surface (``max_length``, ``variants``, ``vocabulary``,
        ``limit``).
        """
        from .compare import distinguishing_tests

        return distinguishing_tests(model_a, model_b, session=self, **kw)
