"""A diy-style litmus test generator (critical-cycle synthesis).

The paper leans on the diy/litmus toolchain [2] and on automated litmus
suite synthesis [35] (Lustig et al.'s prior work).  This module rebuilds
the core idea: a litmus test is synthesised from a *critical cycle* — a
cyclic sequence of relaxed-memory edges that sequential consistency cannot
exhibit.  The generated final-state condition observes exactly that cycle,
so the test asks "can this machine bend here?".

Edge vocabulary (diy naming):

==========  =====================================================
``Rfe``     reads-from, external (write → read, new thread)
``Fre``     from-read, external (read → coherence-later write)
``Wse``     write serialisation (coherence), external
``Rfi``/``Fri``/``Wsi``  the internal (same-thread) versions
``PodRR``   program order, different location, read→read
``PodRW``/``PodWR``/``PodWW``  similarly
``PosRR``...  program order, same location
==========  =====================================================

A cycle must *close*: the walk over threads and locations must return to
its starting event.  ``parse_cycle`` validates this and
``enumerate_cycles`` searches the space of closing cycles of a given
length — the generator feeding the model-comparison tool
(:mod:`repro.litmus.compare`).

Constraints kept from diy's "one co chain per location" discipline: at
most two writes per location, and two writes must be linked by a ``Ws``
edge so coherence order (hence the observing condition) is determined.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..core.scopes import Scope, ThreadId, covering_shape, device_thread
from ..ptx.events import Sem
from ..ptx.isa import Fence, Instruction, Ld, St
from ..ptx.program import Program, ThreadCode
from .conditions import AndC, Condition, MemEq, RegEq
from .test import Expect, LitmusTest


class CycleError(ValueError):
    """The edge sequence does not form a valid closing cycle."""


@dataclass(frozen=True)
class Edge:
    """One edge of a critical cycle."""

    name: str
    src: str          # 'R' or 'W'
    dst: str
    external: bool    # does the edge hop to a new thread?
    same_loc: bool    # does the edge stay on the same location?

    @property
    def is_com(self) -> bool:
        """Whether this is a communication (rf/fr/ws) edge."""
        return self.name[:2] in ("Rf", "Fr", "Ws")


_EDGES: Dict[str, Edge] = {}
for _ext in (True, False):
    _suffix = "e" if _ext else "i"
    _EDGES[f"Rf{_suffix}"] = Edge(f"Rf{_suffix}", "W", "R", _ext, True)
    _EDGES[f"Fr{_suffix}"] = Edge(f"Fr{_suffix}", "R", "W", _ext, True)
    _EDGES[f"Ws{_suffix}"] = Edge(f"Ws{_suffix}", "W", "W", _ext, True)
for _a, _b in itertools.product("RW", repeat=2):
    _EDGES[f"Pod{_a}{_b}"] = Edge(f"Pod{_a}{_b}", _a, _b, False, False)
    _EDGES[f"Pos{_a}{_b}"] = Edge(f"Pos{_a}{_b}", _a, _b, False, True)

EDGE_NAMES: Tuple[str, ...] = tuple(sorted(_EDGES))

#: Locations available to generated tests.
#: enough distinct locations for the widest generated tests the repo
#: exercises (the rf-check crossover benchmark synthesises 10-thread,
#: 10-location cycles)
_LOC_NAMES = ("x", "y", "z", "w", "v", "u", "t", "s", "q", "p", "n", "m")


def edge(name: str) -> Edge:
    """Look up an edge by its diy name."""
    try:
        return _EDGES[name]
    except KeyError:
        raise CycleError(f"unknown edge {name!r}; have {EDGE_NAMES}") from None


@dataclass(frozen=True)
class _Slot:
    """An event slot produced by walking the cycle."""

    index: int
    thread: int
    loc: int
    kind: str  # 'R' or 'W'


def _walk(edges: Sequence[Edge]) -> List[_Slot]:
    """Walk the cycle, assigning threads and locations; check closure.

    diy-style modular assignment: with E external edges the walk cycles
    through E threads, with D different-location edges through D
    locations — so the final edge automatically returns to thread 0 /
    location 0.  E == 1 or D == 1 cannot close (the "hop" would land where
    it started), and event kinds must chain around the cycle.
    """
    if not edges:
        raise CycleError("empty cycle")
    if not edges[-1].is_com:
        # a closing po edge would point backwards inside thread 0's
        # straight-line program; rotate the cycle so a communication edge
        # closes it (every valid cycle has one).
        raise CycleError("the closing edge must be a communication edge")
    externals = sum(1 for e in edges if e.external)
    hops = sum(1 for e in edges if not e.same_loc)
    if externals == 1:
        raise CycleError("a single external edge cannot change thread and close")
    if hops == 1:
        raise CycleError("a single Pod edge cannot change location and close")
    slots: List[_Slot] = [_Slot(0, 0, 0, edges[0].src)]
    thread_hops = 0
    loc_hops = 0
    for index, e in enumerate(edges[:-1]):
        current = slots[-1]
        if e.src != current.kind:
            raise CycleError(
                f"edge {e.name} needs a {e.src} source but follows a "
                f"{current.kind}"
            )
        if e.external:
            thread_hops += 1
        if not e.same_loc:
            loc_hops += 1
        slots.append(
            _Slot(
                index + 1,
                thread_hops % max(externals, 1),
                loc_hops % max(hops, 1),
                e.dst,
            )
        )

    closing = edges[-1]
    first, final_src = slots[0], slots[-1]
    if closing.src != final_src.kind:
        raise CycleError(
            f"edge {closing.name} needs a {closing.src} source but follows "
            f"a {final_src.kind}"
        )
    if closing.dst != first.kind:
        raise CycleError("cycle does not close: event kind mismatch")
    if closing.external and final_src.thread == first.thread:
        raise CycleError("cycle does not close: external edge within one thread")
    if not closing.external and final_src.thread != first.thread:
        raise CycleError("cycle does not close: final po edge leaves thread 0")
    if closing.same_loc and final_src.loc != first.loc:
        raise CycleError("cycle does not close: location mismatch")
    if not closing.same_loc and final_src.loc == first.loc:
        raise CycleError("cycle does not close: Pod edge onto the same location")
    return slots


def parse_cycle(spec: str) -> Tuple[Edge, ...]:
    """Parse ``"Rfe PodRR Fre PodWW"`` (space or '+' separated)."""
    names = spec.replace("+", " ").split()
    return tuple(edge(name) for name in names)


def _write_value(
    loc_values: Optional[Dict[str, Sequence[int]]],
    loc_name: str,
    appearance: int,
) -> int:
    """The value the ``appearance``-th write to ``loc_name`` stores.

    Defaults to 1, 2, ...; a ``loc_values`` sequence overrides.  Values
    must be positive (0 is the init value — a write storing it would make
    the observing condition ambiguous) and distinct per location (the
    condition distinguishes the two writes of a Ws chain by value).
    """
    if loc_values is None or loc_name not in loc_values:
        return appearance
    sequence = loc_values[loc_name]
    if appearance > len(sequence):
        raise CycleError(
            f"loc_values[{loc_name!r}] provides {len(sequence)} value(s) "
            f"but the cycle writes the location at least {appearance} times"
        )
    value = sequence[appearance - 1]
    if value <= 0:
        raise CycleError(
            f"loc_values[{loc_name!r}] must be positive (0 is the init "
            f"value), got {value}"
        )
    if value in sequence[: appearance - 1]:
        raise CycleError(
            f"loc_values[{loc_name!r}] repeats {value}; per-location "
            "values must be distinct"
        )
    return value


@dataclass(frozen=True)
class GeneratedTest:
    """A synthesised test plus the cycle it observes."""

    test: LitmusTest
    cycle: Tuple[Edge, ...]


def generate(
    cycle_spec,
    name: Optional[str] = None,
    write_sem: Sem = Sem.RELAXED,
    read_sem: Sem = Sem.RELAXED,
    scope: Optional[Scope] = Scope.GPU,
    fence_po=None,
    expect: Expect = Expect.ALLOWED,
    annotations: Optional[Dict[int, Tuple[Sem, Optional[Scope]]]] = None,
    placements: Optional[Sequence[ThreadId]] = None,
    loc_values: Optional[Dict[str, Sequence[int]]] = None,
) -> GeneratedTest:
    """Synthesise a litmus test from a critical cycle.

    ``write_sem``/``read_sem``/``scope`` annotate the generated accesses
    (use ``Sem.WEAK`` with ``scope=None`` for unsynchronized variants);
    ``fence_po`` optionally inserts a fence on every program-order edge —
    either a uniform ``(sem, scope)`` pair or a callable
    ``(thread, slot_index) -> Optional[(sem, scope)]`` deciding per edge
    (the fuzzer's randomized fence placement).  ``expect`` documents the
    anticipated PTX verdict (callers usually run the classifier in
    :func:`classify` instead of guessing).

    The perturbation hooks override the uniform defaults point-wise:

    * ``annotations`` — per-*slot* ``{index: (sem, scope)}`` overriding
      the access annotation at that cycle position (invalid sem/scope
      combinations surface as the ISA's ``ValueError``);
    * ``placements`` — one :class:`ThreadId` per cycle thread, replacing
      the default one-CTA-per-thread layout (same-CTA, per-CTA and
      cross-GPU layouts change which edges are morally strong); the
      program's shape is the canonical covering shape, so the test
      round-trips through litmus text;
    * ``loc_values`` — per-location value sequences (``{"x": (3, 7)}``)
      replacing the default 1, 2 assignment; the observing condition
      tracks the chosen values automatically.
    """
    edges = (
        parse_cycle(cycle_spec) if isinstance(cycle_spec, str) else tuple(cycle_spec)
    )
    slots = _walk(edges)
    name = name or "+".join(e.name for e in edges)

    # value assignment: writes per location in first-appearance order get
    # 1, 2, ... (or the caller's loc_values sequence); coherence order per
    # location is dictated by its Ws edge.
    writes_per_loc: Dict[int, List[int]] = {}
    value_of: Dict[int, int] = {}
    for slot in slots:
        if slot.kind == "W":
            appearance = writes_per_loc.setdefault(slot.loc, [])
            appearance.append(slot.index)
            value_of[slot.index] = _write_value(
                loc_values, _LOC_NAMES[slot.loc], len(appearance)
            )
            if len(appearance) > 2:
                raise CycleError("more than two writes to one location")
    ws_of_loc: Dict[int, Tuple[int, int]] = {}
    for e, src, dst in zip(edges, slots, slots[1:] + [slots[0]]):
        if e.name.startswith("Ws"):
            if src.loc in ws_of_loc:
                raise CycleError("at most one Ws edge per location")
            ws_of_loc[src.loc] = (src.index, dst.index)
    co_chain: Dict[int, List[int]] = {}
    for loc, appearance in writes_per_loc.items():
        if len(appearance) == 1:
            co_chain[loc] = appearance
        else:
            if loc not in ws_of_loc:
                raise CycleError(
                    f"location {loc} has two writes but no Ws edge to "
                    "orient them"
                )
            co_chain[loc] = list(ws_of_loc[loc])

    # registers for reads
    reg_of: Dict[int, str] = {}
    for slot in slots:
        if slot.kind == "R":
            reg_of[slot.index] = f"r{len(reg_of) + 1}"

    # conditions from communication edges
    conjuncts: List[Condition] = []
    for e, src, dst in zip(edges, slots, slots[1:] + [slots[0]]):
        if e.name.startswith("Rf"):
            conjuncts.append(
                RegEq(dst.thread, reg_of[dst.index], value_of[src.index])
            )
        elif e.name.startswith("Fr"):
            chain = co_chain[src.loc]
            position = chain.index(dst.index)
            predecessor_value = (
                0 if position == 0 else value_of[chain[position - 1]]
            )
            conjuncts.append(
                RegEq(src.thread, reg_of[src.index], predecessor_value)
            )
        elif e.name.startswith("Ws"):
            conjuncts.append(
                MemEq(_LOC_NAMES[src.loc], value_of[co_chain[src.loc][-1]])
            )
    if not conjuncts:
        raise CycleError("cycle has no communication edges to observe")
    condition: Condition = conjuncts[0]
    for conjunct in conjuncts[1:]:
        condition = AndC(condition, conjunct)

    # emit the program: one CTA per thread (unless placed), slot order
    num_threads = max(s.thread for s in slots) + 1
    if placements is None:
        tids = tuple(device_thread(0, t, 0) for t in range(num_threads))
    else:
        tids = tuple(placements)
        if len(tids) != num_threads:
            raise CycleError(
                f"cycle spans {num_threads} thread(s) but placements "
                f"names {len(tids)}"
            )
    per_thread: List[List[Instruction]] = [[] for _ in range(num_threads)]
    last_slot_of_thread: Dict[int, int] = {}
    for slot in sorted(slots, key=lambda s: s.index):
        instructions = per_thread[slot.thread]
        if slot.thread in last_slot_of_thread:
            fence = (
                fence_po(slot.thread, slot.index)
                if callable(fence_po)
                else fence_po
            )
            if fence is not None:
                instructions.append(Fence(sem=fence[0], scope=fence[1]))
        last_slot_of_thread[slot.thread] = slot.index
        loc_name = _LOC_NAMES[slot.loc]
        if slot.kind == "W":
            slot_sem, slot_scope = (annotations or {}).get(
                slot.index, (write_sem, scope)
            )
            instructions.append(
                St(loc=loc_name, src=value_of[slot.index],
                   sem=slot_sem, scope=slot_scope)
            )
        else:
            slot_sem, slot_scope = (annotations or {}).get(
                slot.index, (read_sem, scope)
            )
            instructions.append(
                Ld(dst=reg_of[slot.index], loc=loc_name,
                   sem=slot_sem, scope=slot_scope)
            )
    program = Program(
        name=name,
        threads=tuple(
            ThreadCode(tid=tid, instructions=tuple(instrs))
            for tid, instrs in zip(tids, per_thread)
        ),
        shape=covering_shape(tids),
    )
    test = LitmusTest(
        name=name,
        program=program,
        condition=condition,
        expect=expect,
        description=f"synthesised from cycle {name}",
        expect_other={"sc": Expect.FORBIDDEN},
    )
    return GeneratedTest(test=test, cycle=edges)


def enumerate_cycles(
    length: int, vocabulary: Sequence[str] = EDGE_NAMES
) -> Iterator[Tuple[Edge, ...]]:
    """All closing cycles of the given length over the vocabulary.

    Cycles are canonicalised to start with a communication edge and
    deduplicated up to rotation.
    """
    seen = set()
    for names in itertools.product(vocabulary, repeat=length):
        edges = tuple(_EDGES[n] for n in names)
        if not edges[-1].is_com:
            continue  # canonical form closes with a communication edge
        rotations = {
            tuple(e.name for e in edges[i:] + edges[:i])
            for i in range(length)
        }
        key = min(rotations)
        if key in seen:
            continue
        try:
            _walk(edges)
        except CycleError:
            continue
        seen.add(key)
        yield edges


def classify(generated: GeneratedTest, model: str = "ptx") -> Expect:
    """Run the synthesised test and return the model's verdict."""
    from .runner import run_litmus

    result = run_litmus(generated.test, model=model)
    return result.verdict
