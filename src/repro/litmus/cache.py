"""Content-addressed on-disk cache for litmus results.

A suite sweep never has to re-solve a test it has already decided: the
cache key is a stable hash of the *canonicalized* test (program,
condition, expectations), the model and engine, the filtered search
options, and a code-version salt — so any change to the test, the
configuration, or the library itself misses cleanly instead of serving a
stale verdict.

Entries are one JSON file per result under ``<dir>/<k[:2]>/<k>.json``
(two-level fan-out keeps directories small on big sweeps).  Writes go
through a temp file + ``os.replace`` so concurrent CLI invocations never
observe a torn entry; a corrupt or unreadable entry counts as a miss and
is overwritten on the next store.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional

from ..schema import CACHE_SCHEMA_VERSION, assert_schema
from .serialize import (
    canonical_json,
    result_from_dict,
    result_to_dict,
    test_to_dict,
    FORMAT_VERSION,
)

# CACHE_SCHEMA_VERSION lives in repro.schema (one place, re-exported
# here for compatibility); this module pins the version it was written
# against so a half-applied bump fails at import, not at cache time.
assert_schema("repro.litmus.cache", cache=7)


def code_salt() -> str:
    """The version salt baked into every cache key.

    Monkeypatch this (or bump any component) to invalidate the cache.
    """
    from .. import __version__  # late: the package may still be importing

    return f"{__version__}/s{CACHE_SCHEMA_VERSION}/f{FORMAT_VERSION}"


def default_cache_dir() -> Path:
    """``$PTXMM_CACHE_DIR``, else ``~/.cache/ptxmm``."""
    env = os.environ.get("PTXMM_CACHE_DIR")
    if env:
        return Path(env)
    return Path(os.path.expanduser("~")) / ".cache" / "ptxmm"


def cache_key(
    test,
    model: str,
    engine: str,
    opts: Dict[str, object],
    certify: bool = False,
    kernel: str = "bit",
) -> str:
    """The content address of one (test, model, engine, opts, certify,
    kernel) task.

    ``certify`` is part of the key: a certified sweep must never be served
    a certificate-less cached verdict, and vice versa.  ``kernel`` is part
    of the key for the same defensive reason: the relation kernels agree
    on outcomes by construction, but a representation bug must surface as
    a wrong *fresh* result, never as a silently shared cached one.
    """
    payload = {
        "salt": code_salt(),
        "test": test_to_dict(test),
        "model": model,
        "engine": engine,
        "certify": bool(certify),
        "kernel": kernel,
        "opts": {
            name: list(value) if isinstance(value, (tuple, list)) else value
            for name, value in sorted(opts.items())
        },
    }
    digest = hashlib.sha256(canonical_json(payload).encode("utf-8"))
    return digest.hexdigest()


@dataclass
class CacheStats:
    """Hit/miss/store counters for one cache handle."""

    hits: int = 0
    misses: int = 0
    stores: int = 0

    def format(self) -> str:
        return f"hits={self.hits} misses={self.misses} stores={self.stores}"


@dataclass
class ResultCache:
    """A content-addressed store of :class:`LitmusResult` payloads."""

    directory: Path
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self):
        self.directory = Path(self.directory)

    def _path(self, key: str) -> Path:
        return self.directory / key[:2] / f"{key}.json"

    def get(self, key: str, test) -> Optional[object]:
        """The cached :class:`LitmusResult` for ``key``, or None.

        ``test`` supplies the (not re-stored) test object the result is
        reattached to.
        """
        path = self._path(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
            result = result_from_dict(payload, test=test)
        except (OSError, ValueError, KeyError, TypeError):
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return result

    def put(self, key: str, result) -> None:
        """Store a result (atomically; losers of a race are equivalent)."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = result_to_dict(result, include_test=False)
        fd, tmp = tempfile.mkstemp(
            dir=str(path.parent), prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle)
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stats.stores += 1

    def __len__(self) -> int:
        """Number of entries on disk (walks the fan-out dirs)."""
        if not self.directory.is_dir():
            return 0
        return sum(1 for _ in self.directory.glob("??/*.json"))
