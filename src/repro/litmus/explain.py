"""Explaining litmus verdicts: the Figures 5b / 6b artifact.

For a **forbidden** condition, every candidate execution exhibiting the
condition violates some axiom; the explainer reports, per axiom, how many
exhibiting candidates it rejects and one concrete witness (a cycle, a
reflexive causality chain, ...) — the machine-generated version of the
paper's annotated litmus diagrams.

For an **allowed** condition, it returns a consistent witness execution
together with its communication relations, so the reader can see *how*
the outcome arises.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..lang.diagnose import Witness, formula_witness
from ..ptx import spec as ptx_spec
from ..ptx.model import build_env
from ..search.ptx_search import Candidate, candidate_executions
from .test import Expect, LitmusTest


@dataclass(frozen=True)
class Explanation:
    """The verdict plus its supporting evidence."""

    test: LitmusTest
    verdict: Expect
    #: for forbidden verdicts: axiom -> number of exhibiting candidates it rejects
    rejections: Dict[str, int] = field(default_factory=dict)
    #: one concrete witness per rejecting axiom
    witnesses: Dict[str, Witness] = field(default_factory=dict)
    #: for allowed verdicts: a consistent candidate showing the outcome
    example: Optional[Candidate] = None

    def render(self) -> str:
        """A human-readable multi-line account."""
        lines = [
            f"test {self.test.name}: condition {self.test.condition!r} is "
            f"{self.verdict.value}"
        ]
        if self.verdict is Expect.FORBIDDEN:
            lines.append(
                "every candidate execution exhibiting the condition violates "
                "at least one axiom:"
            )
            for axiom, count in sorted(
                self.rejections.items(), key=lambda kv: -kv[1]
            ):
                lines.append(f"  {axiom}: rejects {count} candidate(s)")
                witness = self.witnesses.get(axiom)
                if witness is not None:
                    lines.append(f"    e.g. {witness!r}")
        elif self.example is not None:
            lines.append("witness execution:")
            execution = self.example.execution
            for name in ("rf", "co", "sc"):
                relation = execution.relation(name)
                if relation:
                    pairs = ", ".join(
                        f"{a!r}->{b!r}" for a, b in sorted(relation, key=repr)
                    )
                    lines.append(f"  {name}: {pairs}")
        return "\n".join(lines)


def explain(test: LitmusTest) -> Explanation:
    """Explain the PTX verdict of a litmus test."""
    threads = test.threads
    rejections: Counter = Counter()
    witnesses: Dict[str, Witness] = {}
    example: Optional[Candidate] = None
    observed = False
    for candidate in candidate_executions(
        test.program, include_inconsistent=True, **{
            key: value
            for key, value in test.search_opts.items()
            if key == "speculation_values"
        }
    ):
        if not test.condition.holds(candidate.outcome(), threads):
            continue
        if candidate.report.consistent:
            observed = True
            if example is None:
                example = candidate
            continue
        env = build_env(candidate.execution)
        for axiom in candidate.report.failed:
            rejections[axiom] += 1
            if axiom not in witnesses:
                witness = formula_witness(ptx_spec.AXIOMS[axiom], env)
                if witness is not None:
                    witnesses[axiom] = witness
    verdict = Expect.ALLOWED if observed else Expect.FORBIDDEN
    return Explanation(
        test=test,
        verdict=verdict,
        rejections=dict(rejections),
        witnesses=witnesses,
        example=example,
    )
