"""Running litmus tests against the implemented memory models.

The decision core (:func:`decide`) takes one test plus one
:class:`~repro.litmus.config.RunConfig` and returns a
:class:`LitmusResult`; :func:`run_litmus`/:func:`run_suite` are the
friendly entry points, and :class:`~repro.litmus.session.Session` fans
the same core out across worker processes with caching.  Model and
engine dispatch is data-driven: both resolve through
:mod:`repro.registry`, so adding a model or engine never touches this
module.

The search-option surface is :class:`RunConfig` only — the historical
``run_litmus(test, skip_axioms=...)`` keyword shim is gone; pass
``RunConfig(search_opts={...})`` (see :mod:`repro.api` for the supported
public surface).
"""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass
from typing import (
    Dict,
    FrozenSet,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from ..cert.verdict import Certificate, skipped_certificate
from ..core.deadline import TimeoutExceeded, deadline
from ..registry import (
    MODELS,
    partition_opts,
    resolve_engine,
    resolve_model,
)
from ..sat.solver import SolverStats
from ..search.ptx_search import EnumStats, Outcome
from .config import RunConfig
from .test import Expect, LitmusTest

logger = logging.getLogger("repro.litmus")


def _warn_dropped(
    model: str,
    dropped: Tuple[str, ...],
    warned: Optional[Set[Tuple[str, Tuple[str, ...]]]] = None,
) -> None:
    """Log PTX-only options a total-co model is about to ignore.

    ``warned`` deduplicates: a suite run logs each (model, option-set)
    pair once rather than once per test.
    """
    if not dropped:
        return
    key = (model, dropped)
    if warned is not None:
        if key in warned:
            return
        warned.add(key)
    logger.warning(
        "model %r does not understand option(s) %s; they apply to the PTX "
        "model only and are ignored here",
        model, ", ".join(repr(name) for name in dropped),
    )


def _filter_opts(
    model: str,
    opts: Dict[str, object],
    warned: Optional[Set] = None,
) -> Dict[str, object]:
    """Keep the options ``model`` understands; reject unknown ones loudly;
    log (rather than silently swallow) the tolerated-but-ignored ones."""
    kept, dropped = partition_opts(model, opts)
    _warn_dropped(model, dropped, warned)
    return kept


# TimeoutExceeded / deadline historically lived here; they moved to
# :mod:`repro.core.deadline` so the engines can poll check_deadline()
# without importing the runner.  Re-exported for compatibility.


@dataclass(frozen=True)
class LitmusResult:
    """The verdict of running one litmus test under one model."""

    test: LitmusTest
    model: str
    observed: bool
    outcomes: FrozenSet[Outcome]
    #: wall-clock seconds spent deciding the test
    elapsed: Optional[float] = None
    #: SAT backend counters (populated by the symbolic engine only)
    solver_stats: Optional[SolverStats] = None
    #: enumeration counters (populated by the enumerative PTX engine only):
    #: rf assignments visited, candidates pruned before the co loop,
    #: candidates fully checked, and evaluator memo hits/misses
    enum_stats: Optional[EnumStats] = None
    #: ``"ok"`` normally; ``"timeout"``/``"error"`` when the decision
    #: procedure was cut short (the verdict is then TIMEOUT/ERROR)
    status: str = "ok"
    #: human-readable failure detail for non-ok statuses
    detail: Optional[str] = None
    #: independently checked evidence for the verdict (``certify`` runs
    #: only); a failed certificate downgrades the verdict to ERROR
    certificate: Optional[Certificate] = None

    @property
    def verdict(self) -> Expect:
        """The model's verdict on the test condition."""
        if self.status == "timeout":
            return Expect.TIMEOUT
        if self.status == "error":
            return Expect.ERROR
        return Expect.ALLOWED if self.observed else Expect.FORBIDDEN

    @property
    def matches_expectation(self) -> Optional[bool]:
        """Whether the verdict matches the documented one (None = undocumented,
        or the run did not complete)."""
        if self.status != "ok":
            return None
        expected = self.test.expected(self.model)
        if expected is None:
            return None
        return expected is self.verdict

    def to_dict(self, include_test: bool = True) -> Dict:
        """Serialize (see :mod:`repro.litmus.serialize`)."""
        from .serialize import result_to_dict

        return result_to_dict(self, include_test=include_test)

    @classmethod
    def from_dict(cls, payload: Dict, test: Optional[LitmusTest] = None):
        """Rebuild from :meth:`to_dict` output."""
        from .serialize import result_from_dict

        return result_from_dict(payload, test=test)

    def __repr__(self) -> str:
        status = {True: "OK", False: "MISMATCH", None: "?"}[self.matches_expectation]
        return (
            f"<{self.test.name} under {self.model}: {self.verdict.value} "
            f"[{status}]>"
        )


def _run_certified(
    test: LitmusTest, config: RunConfig, opts: Dict[str, object]
) -> Tuple[
    bool, FrozenSet[Outcome], Optional[SolverStats], Certificate
]:
    """Decide the condition through the proof-logging path when possible.

    Tests decidable by one bounded SAT query get a checked DRAT/witness
    certificate; everything else runs on its normal engine and carries a
    ``skipped`` certificate naming the reason — the caller can tell "not
    checkable" apart from "not checked".
    """
    from ..cert.verdict import certify_symbolic
    from ..kodkod.litmus import UnsupportedCondition

    spec = resolve_model(config.model)
    # the uniform engine capability gate still applies under certify
    resolve_engine(config.engine).check_model(config.model)
    if not spec.symbolic:
        outcomes = spec.run(test.program, **opts)
        return (
            test.condition_observed(outcomes),
            outcomes,
            None,
            skipped_certificate(
                f"model {config.model!r} has no symbolic encoding"
            ),
        )
    if opts:
        outcomes = spec.run(test.program, **opts)
        return (
            test.condition_observed(outcomes),
            outcomes,
            None,
            skipped_certificate(
                "search options require the enumerative engine"
            ),
        )
    try:
        observed, certificate, stats = certify_symbolic(test)
    except UnsupportedCondition as exc:
        outcomes = spec.run(test.program)
        return (
            test.condition_observed(outcomes),
            outcomes,
            None,
            skipped_certificate(f"condition not relationally encodable: {exc}"),
        )
    return observed, frozenset(), stats, certificate


def decide(
    test: LitmusTest,
    config: RunConfig,
    warned: Optional[Set] = None,
) -> LitmusResult:
    """The decision core: run one test under one config.

    Applies the config's per-test ``timeout`` (a test that exceeds it
    yields a ``TIMEOUT`` verdict, not an exception).  Errors from the
    decision procedure itself propagate — :class:`Session` wraps this
    with failure isolation for sweeps.
    """
    merged = dict(test.search_opts)
    merged.update(config.opts)
    merged = _filter_opts(config.model, merged, warned=warned)
    return decide_filtered(test, config, merged)


def decide_filtered(
    test: LitmusTest, config: RunConfig, opts: Dict[str, object]
) -> LitmusResult:
    """Like :func:`decide`, but over pre-merged, pre-filtered options.

    Worker processes call this directly: the parent already merged the
    test-level and config-level options and validated them against the
    model, so re-filtering (and re-warning) in every worker is skipped.
    """
    solver_stats: Optional[SolverStats] = None
    enum_stats: Optional[EnumStats] = None
    status = "ok"
    detail: Optional[str] = None
    observed = False
    outcomes: FrozenSet[Outcome] = frozenset()
    certificate: Optional[Certificate] = None
    started = time.perf_counter()
    preemptive = True
    try:
        with deadline(config.timeout) as preemptive:
            if config.certify:
                observed, outcomes, solver_stats, certificate = (
                    _run_certified(test, config, opts)
                )
            else:
                engine = resolve_engine(config.engine)
                observed, outcomes, solver_stats, enum_stats = engine.decide(
                    test, config, opts
                )
    except TimeoutExceeded:
        status = "timeout"
        detail = f"exceeded {config.timeout}s"
        if not preemptive:
            # the deadline could not arm SIGALRM here (worker thread /
            # no such signal): the bound held through cooperative engine
            # polls only, which the result records
            detail += " (cooperative guard)"
        outcomes = frozenset()
        solver_stats = None
        enum_stats = None
        certificate = None
    if certificate is not None and certificate.failed:
        # never let an uncertified verdict pass silently: a trace or
        # witness the independent checker rejects voids the verdict
        status = "error"
        detail = f"certificate check failed: {certificate.detail}"
    elapsed = time.perf_counter() - started
    return LitmusResult(
        test=test,
        model=config.model,
        observed=observed,
        outcomes=outcomes,
        elapsed=elapsed,
        solver_stats=solver_stats,
        enum_stats=enum_stats,
        status=status,
        detail=detail,
        certificate=certificate,
    )


def _coerce_config(
    config: Optional[RunConfig],
    model: Optional[str],
    engine: Optional[str],
    timeout: Optional[float],
) -> RunConfig:
    """Build the effective config from the keyword conveniences."""
    if config is None:
        return RunConfig(
            model=model or "ptx",
            engine=engine or "enumerative",
            timeout=timeout,
        )
    if not isinstance(config, RunConfig):
        raise TypeError(
            f"config must be a RunConfig, not {type(config).__name__}; "
            "search options go in RunConfig(search_opts={...})"
        )
    changes: Dict[str, object] = {}
    if model is not None:
        changes["model"] = model
    if engine is not None:
        changes["engine"] = engine
    if timeout is not None:
        changes["timeout"] = timeout
    return config.evolve(**changes) if changes else config


def run_litmus(
    test: LitmusTest,
    config: Optional[RunConfig] = None,
    model: Optional[str] = None,
    engine: Optional[str] = None,
    timeout: Optional[float] = None,
) -> LitmusResult:
    """Run one litmus test.

    Preferred form: ``run_litmus(test, config=RunConfig(...))``.  The
    ``model``/``engine``/``timeout`` keywords are conveniences layered
    over the config; search options are configured via
    ``RunConfig(search_opts={...})`` only.

    ``engine`` selects how the PTX model decides the condition:
    ``"enumerative"`` (default) explores candidate executions explicitly;
    ``"symbolic"`` issues one bounded SAT query (§5.2) and surfaces the
    solver's :class:`SolverStats` on the result; ``"symbolic-enum"``
    enumerates every consistent SAT instance and reports the full
    outcome set (what differential cross-checks compare); ``"rf-check"``
    enumerates reads-from choices only and decides each by coherence
    saturation (:mod:`repro.search.rf_check`), falling back to the
    enumerative engine outside its fragment.  See
    :data:`repro.registry.ENGINES` for the full capability table.
    """
    cfg = _coerce_config(config, model, engine, timeout)
    return decide(test, cfg)


def run_suite(
    tests: Sequence[LitmusTest],
    config: Optional[RunConfig] = None,
    model: Optional[str] = None,
    engine: Optional[str] = None,
    timeout: Optional[float] = None,
    jobs: Optional[int] = None,
) -> Tuple[LitmusResult, ...]:
    """Run a sequence of tests, returning their results in order.

    With ``jobs`` (or a config carrying ``jobs > 1``) the tests fan out
    across worker processes; results come back in input order regardless
    of completion order.  For cache control and stats, drive a
    :class:`~repro.litmus.session.Session` directly.
    """
    cfg = _coerce_config(config, model, engine, timeout)
    if jobs is not None:
        cfg = cfg.evolve(jobs=jobs)
    from .session import Session

    with Session(cfg) as session:
        return session.run_suite(tests)


def summarize(results: Sequence[LitmusResult], show_stats: bool = False) -> str:
    """A printable table of results (name, verdict, expectation check).

    ``show_stats`` appends a wall-time column (and SAT conflict counts when
    the symbolic engine produced them).
    """
    width = max([len("test")] + [len(r.test.name) for r in results])
    model_width = max([len("model")] + [len(r.model) for r in results])
    header = (
        f"{'test'.ljust(width)}  {'model'.ljust(model_width)}  "
        f"verdict    expected   status"
    )
    if show_stats:
        header += "    time       conflicts"
    lines = [header]
    for result in results:
        expected = result.test.expected(result.model)
        status = {True: "ok", False: "MISMATCH", None: "-"}[result.matches_expectation]
        if result.status != "ok":
            status = result.status.upper()
        line = (
            f"{result.test.name.ljust(width)}  {result.model.ljust(model_width)}  "
            f"{result.verdict.value:<9}  "
            f"{(expected.value if expected else '-'):<9}  "
        )
        if show_stats:
            elapsed = (
                f"{result.elapsed * 1000:8.1f}ms"
                if result.elapsed is not None
                else f"{'-':>10}"
            )
            conflicts = (
                f"{result.solver_stats.conflicts:9d}"
                if result.solver_stats is not None
                else f"{'-':>9}"
            )
            line += f"{status:<8}  {elapsed}  {conflicts}"
        else:
            line += status
        lines.append(line)
    return "\n".join(lines)
