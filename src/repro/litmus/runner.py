"""Running litmus tests against the implemented memory models."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, Optional, Sequence, Tuple

from ..ptx.program import Program
from ..scmodel import check_execution as sc_check
from ..search.ptx_search import Outcome, allowed_outcomes
from ..search.total_search import allowed_outcomes_total
from ..tso import check_execution as tso_check
from .test import Expect, LitmusTest

ModelFn = Callable[..., FrozenSet[Outcome]]


def _ptx_outcomes(program: Program, **opts) -> FrozenSet[Outcome]:
    return allowed_outcomes(program, **opts)


def _tso_outcomes(program: Program, **opts) -> FrozenSet[Outcome]:
    opts.pop("skip_axioms", None)
    return allowed_outcomes_total(program, tso_check, **opts)


def _sc_outcomes(program: Program, **opts) -> FrozenSet[Outcome]:
    opts.pop("skip_axioms", None)
    return allowed_outcomes_total(program, sc_check, **opts)


def _ptx_legacy_outcomes(program: Program, **opts) -> FrozenSet[Outcome]:
    from ..ptx.legacy import legacy_allowed_outcomes

    return legacy_allowed_outcomes(program, **opts)


MODELS: Dict[str, ModelFn] = {
    "ptx": _ptx_outcomes,
    "ptx-legacy": _ptx_legacy_outcomes,
    "tso": _tso_outcomes,
    "sc": _sc_outcomes,
}


@dataclass(frozen=True)
class LitmusResult:
    """The verdict of running one litmus test under one model."""

    test: LitmusTest
    model: str
    observed: bool
    outcomes: FrozenSet[Outcome]

    @property
    def verdict(self) -> Expect:
        """The model's verdict on the test condition."""
        return Expect.ALLOWED if self.observed else Expect.FORBIDDEN

    @property
    def matches_expectation(self) -> Optional[bool]:
        """Whether the verdict matches the documented one (None = undocumented)."""
        expected = self.test.expected(self.model)
        if expected is None:
            return None
        return expected is self.verdict

    def __repr__(self) -> str:
        status = {True: "OK", False: "MISMATCH", None: "?"}[self.matches_expectation]
        return (
            f"<{self.test.name} under {self.model}: {self.verdict.value} "
            f"[{status}]>"
        )


def run_litmus(test: LitmusTest, model: str = "ptx", **opts) -> LitmusResult:
    """Run one litmus test under the named model."""
    if model not in MODELS:
        raise KeyError(f"unknown model {model!r}; have {sorted(MODELS)}")
    merged = dict(test.search_opts)
    merged.update(opts)
    outcomes = MODELS[model](test.program, **merged)
    return LitmusResult(
        test=test,
        model=model,
        observed=test.condition_observed(outcomes),
        outcomes=outcomes,
    )


def run_suite(
    tests: Sequence[LitmusTest], model: str = "ptx", **opts
) -> Tuple[LitmusResult, ...]:
    """Run a sequence of tests, returning their results in order."""
    return tuple(run_litmus(test, model=model, **opts) for test in tests)


def summarize(results: Sequence[LitmusResult]) -> str:
    """A printable table of results (name, verdict, expectation check)."""
    width = max((len(r.test.name) for r in results), default=4)
    lines = [f"{'test'.ljust(width)}  model  verdict    expected   status"]
    for result in results:
        expected = result.test.expected(result.model)
        status = {True: "ok", False: "MISMATCH", None: "-"}[result.matches_expectation]
        lines.append(
            f"{result.test.name.ljust(width)}  {result.model:<5}  "
            f"{result.verdict.value:<9}  "
            f"{(expected.value if expected else '-'):<9}  {status}"
        )
    return "\n".join(lines)
