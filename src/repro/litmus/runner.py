"""Running litmus tests against the implemented memory models."""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, Optional, Sequence, Tuple

from ..ptx.program import Program
from ..sat.solver import SolverStats
from ..scmodel import check_execution as sc_check
from ..search.ptx_search import Outcome, allowed_outcomes
from ..search.total_search import allowed_outcomes_total
from ..tso import check_execution as tso_check
from .test import Expect, LitmusTest

ModelFn = Callable[..., FrozenSet[Outcome]]


def _ptx_outcomes(program: Program, **opts) -> FrozenSet[Outcome]:
    return allowed_outcomes(program, **opts)


def _tso_outcomes(program: Program, **opts) -> FrozenSet[Outcome]:
    opts.pop("skip_axioms", None)
    return allowed_outcomes_total(program, tso_check, **opts)


def _sc_outcomes(program: Program, **opts) -> FrozenSet[Outcome]:
    opts.pop("skip_axioms", None)
    return allowed_outcomes_total(program, sc_check, **opts)


def _ptx_legacy_outcomes(program: Program, **opts) -> FrozenSet[Outcome]:
    from ..ptx.legacy import legacy_allowed_outcomes

    return legacy_allowed_outcomes(program, **opts)


MODELS: Dict[str, ModelFn] = {
    "ptx": _ptx_outcomes,
    "ptx-legacy": _ptx_legacy_outcomes,
    "tso": _tso_outcomes,
    "sc": _sc_outcomes,
}

#: search options each model's engine accepts (everything else is an error)
_MODEL_OPTS: Dict[str, FrozenSet[str]] = {
    "ptx": frozenset({"skip_axioms", "speculation_values"}),
    "ptx-legacy": frozenset({"skip_axioms", "speculation_values"}),
    "tso": frozenset({"speculation_values"}),
    "sc": frozenset({"speculation_values"}),
}

#: PTX-only options the total-co models tolerate and drop (a test tagged
#: with e.g. ``skip_axioms`` must still be runnable under tso/sc)
_IGNORED_OPTS: Dict[str, FrozenSet[str]] = {
    "tso": frozenset({"skip_axioms"}),
    "sc": frozenset({"skip_axioms"}),
}


def _filter_opts(model: str, opts: Dict[str, object]) -> Dict[str, object]:
    """Keep the options ``model`` understands; reject unknown ones loudly.

    Without this, a PTX-only option reaches the model's search function and
    surfaces as a bare ``TypeError`` deep inside the enumerator.
    """
    allowed = _MODEL_OPTS[model]
    ignored = _IGNORED_OPTS.get(model, frozenset())
    kept: Dict[str, object] = {}
    for name, value in opts.items():
        if name in allowed:
            kept[name] = value
        elif name not in ignored:
            raise ValueError(
                f"search option {name!r} is not supported by model {model!r} "
                f"(supported: {sorted(allowed)})"
            )
    return kept


@dataclass(frozen=True)
class LitmusResult:
    """The verdict of running one litmus test under one model."""

    test: LitmusTest
    model: str
    observed: bool
    outcomes: FrozenSet[Outcome]
    #: wall-clock seconds spent deciding the test
    elapsed: Optional[float] = None
    #: SAT backend counters (populated by the symbolic engine only)
    solver_stats: Optional[SolverStats] = None

    @property
    def verdict(self) -> Expect:
        """The model's verdict on the test condition."""
        return Expect.ALLOWED if self.observed else Expect.FORBIDDEN

    @property
    def matches_expectation(self) -> Optional[bool]:
        """Whether the verdict matches the documented one (None = undocumented)."""
        expected = self.test.expected(self.model)
        if expected is None:
            return None
        return expected is self.verdict

    def __repr__(self) -> str:
        status = {True: "OK", False: "MISMATCH", None: "?"}[self.matches_expectation]
        return (
            f"<{self.test.name} under {self.model}: {self.verdict.value} "
            f"[{status}]>"
        )


def _run_symbolic(
    test: LitmusTest, opts: Dict[str, object]
) -> Tuple[bool, FrozenSet[Outcome], Optional[SolverStats]]:
    """Decide the condition with one bounded SAT query where possible.

    Falls back to the enumerative engine when the test carries search
    options (the single-query encoding has no search knobs) or when the
    condition is value-dependent and cannot be phrased relationally.
    """
    from ..kodkod.litmus import UnsupportedCondition, symbolic_outcome_allowed

    if not opts:
        stats: list = []
        try:
            observed = symbolic_outcome_allowed(test, stats=stats)
        except UnsupportedCondition:
            pass
        else:
            merged = stats[0]
            for snapshot in stats[1:]:
                merged = merged + snapshot
            return observed, frozenset(), merged
    outcomes = _ptx_outcomes(test.program, **opts)
    return test.condition_observed(outcomes), outcomes, None


def run_litmus(
    test: LitmusTest, model: str = "ptx", engine: str = "enumerative", **opts
) -> LitmusResult:
    """Run one litmus test under the named model.

    ``engine`` selects how the PTX model decides the condition:
    ``"enumerative"`` (default) explores candidate executions explicitly;
    ``"symbolic"`` issues one bounded SAT query (§5.2) and surfaces the
    solver's :class:`SolverStats` on the result.
    """
    if model not in MODELS:
        raise KeyError(f"unknown model {model!r}; have {sorted(MODELS)}")
    merged = dict(test.search_opts)
    merged.update(opts)
    merged = _filter_opts(model, merged)
    solver_stats: Optional[SolverStats] = None
    started = time.perf_counter()
    if engine == "symbolic":
        if model != "ptx":
            raise ValueError(
                f"the symbolic engine supports only the 'ptx' model, not {model!r}"
            )
        observed, outcomes, solver_stats = _run_symbolic(test, merged)
    elif engine == "enumerative":
        outcomes = MODELS[model](test.program, **merged)
        observed = test.condition_observed(outcomes)
    else:
        raise ValueError(
            f"unknown engine {engine!r}; have ['enumerative', 'symbolic']"
        )
    elapsed = time.perf_counter() - started
    return LitmusResult(
        test=test,
        model=model,
        observed=observed,
        outcomes=outcomes,
        elapsed=elapsed,
        solver_stats=solver_stats,
    )


def run_suite(
    tests: Sequence[LitmusTest],
    model: str = "ptx",
    engine: str = "enumerative",
    **opts,
) -> Tuple[LitmusResult, ...]:
    """Run a sequence of tests, returning their results in order."""
    return tuple(
        run_litmus(test, model=model, engine=engine, **opts) for test in tests
    )


def summarize(results: Sequence[LitmusResult], show_stats: bool = False) -> str:
    """A printable table of results (name, verdict, expectation check).

    ``show_stats`` appends a wall-time column (and SAT conflict counts when
    the symbolic engine produced them).
    """
    width = max([len("test")] + [len(r.test.name) for r in results])
    model_width = max([len("model")] + [len(r.model) for r in results])
    header = (
        f"{'test'.ljust(width)}  {'model'.ljust(model_width)}  "
        f"verdict    expected   status"
    )
    if show_stats:
        header += "    time       conflicts"
    lines = [header]
    for result in results:
        expected = result.test.expected(result.model)
        status = {True: "ok", False: "MISMATCH", None: "-"}[result.matches_expectation]
        line = (
            f"{result.test.name.ljust(width)}  {result.model.ljust(model_width)}  "
            f"{result.verdict.value:<9}  "
            f"{(expected.value if expected else '-'):<9}  "
        )
        if show_stats:
            elapsed = (
                f"{result.elapsed * 1000:8.1f}ms"
                if result.elapsed is not None
                else f"{'-':>10}"
            )
            conflicts = (
                f"{result.solver_stats.conflicts:9d}"
                if result.solver_stats is not None
                else f"{'-':>9}"
            )
            line += f"{status:<8}  {elapsed}  {conflicts}"
        else:
            line += status
        lines.append(line)
    return "\n".join(lines)
