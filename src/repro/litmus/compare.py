"""Automatically comparing memory models (after Wickerson et al. [58]).

The paper builds on POPL'17's "Automatically Comparing Memory Consistency
Models": enumerate programs and search for one that two models *disagree*
on.  With the critical-cycle generator in hand this becomes a pipeline:
enumerate closing cycles → synthesise a litmus test per annotation variant
→ classify under both models → report the distinguishing tests.

Classification is the expensive leg, and each (candidate, model) pair is
independent — so the search can fan out through a
:class:`~repro.litmus.session.Session` (``session=`` / ``ptxmm compare
--jobs N``): candidates are classified in parallel batches while the
distinctions still stream out in deterministic enumeration order.

Typical findings this surfaces (see ``tests/test_compare_models.py``):

* PTX vs TSO — load buffering (``PodRW Rfe PodRW Rfe``) and IRIW separate
  them: PTX allows, TSO forbids;
* PTX-relaxed vs PTX-release/acquire — MP-shaped cycles separate the
  annotation strengths within one model;
* TSO vs SC — store buffering, and nothing shorter.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Sequence, Tuple

from ..core.scopes import Scope
from ..ptx.events import Sem
from .generator import EDGE_NAMES, GeneratedTest, enumerate_cycles, generate
from ..registry import resolve_model
from .runner import run_litmus
from .test import Expect

#: Annotation variants applied to every generated cycle.
VARIANTS: Dict[str, Dict] = {
    "weak": {"write_sem": Sem.WEAK, "read_sem": Sem.WEAK, "scope": None},
    "relaxed.gpu": {
        "write_sem": Sem.RELAXED, "read_sem": Sem.RELAXED, "scope": Scope.GPU
    },
    "rel_acq.gpu": {
        "write_sem": Sem.RELEASE, "read_sem": Sem.ACQUIRE, "scope": Scope.GPU
    },
    "fence.sc.gpu": {
        "write_sem": Sem.RELAXED, "read_sem": Sem.RELAXED,
        "scope": Scope.GPU, "fence_po": (Sem.SC, Scope.GPU),
    },
}


@dataclass(frozen=True)
class Distinction:
    """A synthesised program two models disagree on."""

    generated: GeneratedTest
    variant: str
    verdicts: Dict[str, Expect]

    @property
    def name(self) -> str:
        return f"{self.generated.test.name}@{self.variant}"

    def __repr__(self) -> str:
        verdicts = ", ".join(
            f"{model}={verdict.value}" for model, verdict in self.verdicts.items()
        )
        return f"<Distinction {self.name}: {verdicts}>"


def compare_on(
    generated: GeneratedTest,
    models: Sequence[str],
    session=None,
) -> Dict[str, Expect]:
    """Classify one generated test under several models."""
    if session is not None:
        results = session.run_tasks(
            [(generated.test, session.config.for_model(m)) for m in models]
        )
        return {m: r.verdict for m, r in zip(models, results)}
    return {
        model: run_litmus(generated.test, model=model).verdict
        for model in models
    }


def _candidates(
    max_length: int,
    variants: Dict[str, Dict],
    vocabulary: Sequence[str],
) -> Iterator[Tuple[GeneratedTest, str]]:
    """All (generated test, variant name) pairs, in deterministic order."""
    for length in range(2, max_length + 1):
        for cycle in enumerate_cycles(length, vocabulary):
            for variant_name, kwargs in variants.items():
                try:
                    yield generate(cycle, **kwargs), variant_name
                except ValueError:
                    continue


def distinguishing_tests(
    model_a: str,
    model_b: str,
    max_length: int = 4,
    variants: Optional[Dict[str, Dict]] = None,
    vocabulary: Sequence[str] = EDGE_NAMES,
    limit: Optional[int] = None,
    session=None,
) -> Iterator[Distinction]:
    """Search cycles of length ≤ ``max_length`` for model-separating tests.

    Both model names must come from :data:`repro.registry.MODELS`.
    Variants that a model cannot express (e.g. scope annotations are
    meaningless to SC — it ignores them) still run; the comparison is
    behavioural.

    With a :class:`~repro.litmus.session.Session`, candidates are
    classified through its worker pool (and result cache) in batches;
    the yielded distinctions and their order are identical to the
    sequential search.
    """
    for model in (model_a, model_b):
        resolve_model(model)
    variants = VARIANTS if variants is None else variants
    candidates = _candidates(max_length, variants, vocabulary)
    found = 0
    if session is None:
        for generated, variant_name in candidates:
            verdicts = compare_on(generated, (model_a, model_b))
            if verdicts[model_a] is not verdicts[model_b]:
                yield Distinction(
                    generated=generated,
                    variant=variant_name,
                    verdicts=verdicts,
                )
                found += 1
                if limit is not None and found >= limit:
                    return
        return
    # batched parallel classification, deterministic yield order
    batch_size = max(1, session.jobs) * 8
    config_a = session.config.for_model(model_a)
    config_b = session.config.for_model(model_b)
    while True:
        batch = list(itertools.islice(candidates, batch_size))
        if not batch:
            return
        tasks = []
        for generated, _ in batch:
            tasks.append((generated.test, config_a))
            tasks.append((generated.test, config_b))
        results = session.run_tasks(tasks)
        decided = (Expect.ALLOWED, Expect.FORBIDDEN)
        for pair_index, (generated, variant_name) in enumerate(batch):
            verdict_a = results[2 * pair_index].verdict
            verdict_b = results[2 * pair_index + 1].verdict
            if verdict_a not in decided or verdict_b not in decided:
                continue  # timeout/error is not a behavioural distinction
            if verdict_a is not verdict_b:
                yield Distinction(
                    generated=generated,
                    variant=variant_name,
                    verdicts={model_a: verdict_a, model_b: verdict_b},
                )
                found += 1
                if limit is not None and found >= limit:
                    return


def first_distinction(
    model_a: str, model_b: str, **kw
) -> Optional[Distinction]:
    """The shortest-cycle distinction between two models, or None."""
    for distinction in distinguishing_tests(model_a, model_b, **kw):
        return distinction
    return None
