"""One serialization format for litmus tests and results.

Cache entries, worker IPC, and external exports all need the same thing:
a faithful, JSON-native rendering of :class:`~repro.litmus.test.LitmusTest`
and :class:`~repro.litmus.runner.LitmusResult` that round-trips exactly.
This module is that single format — everything is plain dicts/lists/
scalars, so ``json.dumps`` works directly and :func:`canonical_json`
yields a stable byte string suitable for content addressing.

Round-trip guarantees (enforced by ``tests/test_litmus_serialize.py``):

* ``test_from_dict(test_to_dict(t)) == t`` for every suite test,
* ``result_from_dict(result_to_dict(r)) == r`` including outcomes,
  solver stats, and status,
* canonical JSON is independent of dict insertion order.
"""

from __future__ import annotations

import json
from typing import Dict, Optional

from ..cert.verdict import Certificate
from ..core.scopes import Scope, SystemShape, ThreadId
from ..ptx.events import Sem
from ..ptx.isa import Atom, AtomOp, Bar, BarOp, Fence, Instruction, Ld, Red, St
from ..ptx.program import Program, ThreadCode
from ..sat.solver import SolverStats
from ..schema import FORMAT_VERSION, assert_schema
from ..search.ptx_search import EnumStats, Outcome
from .conditions import AndC, Condition, MemEq, NotC, OrC, RegEq, TrueC

# FORMAT_VERSION lives in repro.schema (one place, re-exported here);
# this module pins the versions it renders so a half-applied schema bump
# fails at import.
assert_schema("repro.litmus.serialize", cache=7)


def canonical_json(payload) -> str:
    """Deterministic JSON text (sorted keys, no whitespace)."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


# ----------------------------------------------------------------------
# scope tree
# ----------------------------------------------------------------------

def thread_id_to_obj(tid: ThreadId):
    return [tid.gpu, tid.cta, tid.thread]


def thread_id_from_obj(obj) -> ThreadId:
    gpu, cta, thread = obj
    return ThreadId(gpu=gpu, cta=cta, thread=thread)


def _shape_to_obj(shape: SystemShape) -> Dict:
    return {
        "gpus": shape.gpus,
        "ctas_per_gpu": shape.ctas_per_gpu,
        "threads_per_cta": shape.threads_per_cta,
        "host_threads": shape.host_threads,
    }


def _shape_from_obj(obj: Dict) -> SystemShape:
    return SystemShape(**obj)


# ----------------------------------------------------------------------
# instructions
# ----------------------------------------------------------------------

def _operands_to_obj(value):
    """Operands (and register tuples) as lists; scalars pass through."""
    if isinstance(value, tuple):
        return list(value)
    return value


def _operands_from_obj(value):
    if isinstance(value, list):
        return tuple(value)
    return value


def instruction_to_dict(instr: Instruction) -> Dict:
    if isinstance(instr, Ld):
        if instr.volatile:
            return {
                "op": "ld", "volatile": True, "vec": instr.vec,
                "dst": _operands_to_obj(instr.dst), "loc": instr.loc,
            }
        return {
            "op": "ld", "dst": _operands_to_obj(instr.dst), "loc": instr.loc,
            "sem": instr.sem.value,
            "scope": instr.scope.value if instr.scope else None,
            "vec": instr.vec,
        }
    if isinstance(instr, St):
        if instr.volatile:
            return {
                "op": "st", "volatile": True, "vec": instr.vec,
                "loc": instr.loc, "src": _operands_to_obj(instr.src),
            }
        return {
            "op": "st", "loc": instr.loc, "src": _operands_to_obj(instr.src),
            "sem": instr.sem.value,
            "scope": instr.scope.value if instr.scope else None,
            "vec": instr.vec,
        }
    if isinstance(instr, Atom):
        return {
            "op": "atom", "dst": instr.dst, "loc": instr.loc,
            "atom_op": instr.op.value,
            "operands": _operands_to_obj(instr.operands),
            "sem": instr.sem.value,
            "scope": instr.scope.value if instr.scope else None,
        }
    if isinstance(instr, Red):
        return {
            "op": "red", "loc": instr.loc, "atom_op": instr.op.value,
            "operands": _operands_to_obj(instr.operands),
            "sem": instr.sem.value,
            "scope": instr.scope.value if instr.scope else None,
        }
    if isinstance(instr, Fence):
        return {"op": "fence", "sem": instr.sem.value, "scope": instr.scope.value}
    if isinstance(instr, Bar):
        return {"op": "bar", "bar_op": instr.op.value, "barrier": instr.barrier}
    raise TypeError(f"cannot serialize instruction {instr!r}")


def instruction_from_dict(obj: Dict) -> Instruction:
    op = obj["op"]
    scope = Scope(obj["scope"]) if obj.get("scope") else None
    if op == "ld":
        if obj.get("volatile"):
            return Ld(
                dst=_operands_from_obj(obj["dst"]), loc=obj["loc"],
                volatile=True, vec=obj.get("vec", 1),
            )
        return Ld(
            dst=_operands_from_obj(obj["dst"]), loc=obj["loc"],
            sem=Sem(obj["sem"]), scope=scope, vec=obj.get("vec", 1),
        )
    if op == "st":
        if obj.get("volatile"):
            return St(
                loc=obj["loc"], src=_operands_from_obj(obj["src"]),
                volatile=True, vec=obj.get("vec", 1),
            )
        return St(
            loc=obj["loc"], src=_operands_from_obj(obj["src"]),
            sem=Sem(obj["sem"]), scope=scope, vec=obj.get("vec", 1),
        )
    if op == "atom":
        return Atom(
            dst=obj["dst"], loc=obj["loc"], op=AtomOp(obj["atom_op"]),
            operands=_operands_from_obj(obj["operands"]),
            sem=Sem(obj["sem"]), scope=scope,
        )
    if op == "red":
        return Red(
            loc=obj["loc"], op=AtomOp(obj["atom_op"]),
            operands=_operands_from_obj(obj["operands"]),
            sem=Sem(obj["sem"]), scope=scope,
        )
    if op == "fence":
        return Fence(sem=Sem(obj["sem"]), scope=Scope(obj["scope"]))
    if op == "bar":
        return Bar(op=BarOp(obj["bar_op"]), barrier=obj["barrier"])
    raise ValueError(f"unknown instruction kind {op!r}")


# ----------------------------------------------------------------------
# programs
# ----------------------------------------------------------------------

def program_to_dict(program: Program) -> Dict:
    return {
        "name": program.name,
        "shape": _shape_to_obj(program.shape),
        "threads": [
            {
                "tid": thread_id_to_obj(thread.tid),
                "instructions": [
                    instruction_to_dict(i) for i in thread.instructions
                ],
            }
            for thread in program.threads
        ],
    }


def program_from_dict(obj: Dict) -> Program:
    return Program(
        name=obj["name"],
        shape=_shape_from_obj(obj["shape"]),
        threads=tuple(
            ThreadCode(
                tid=thread_id_from_obj(t["tid"]),
                instructions=tuple(
                    instruction_from_dict(i) for i in t["instructions"]
                ),
            )
            for t in obj["threads"]
        ),
    )


# ----------------------------------------------------------------------
# conditions
# ----------------------------------------------------------------------

def condition_to_dict(cond: Condition) -> Dict:
    if isinstance(cond, RegEq):
        return {
            "kind": "reg", "thread": cond.thread_index,
            "name": cond.reg, "value": cond.value,
        }
    if isinstance(cond, MemEq):
        return {"kind": "mem", "loc": cond.loc, "value": cond.value}
    if isinstance(cond, AndC):
        return {
            "kind": "and",
            "left": condition_to_dict(cond.left),
            "right": condition_to_dict(cond.right),
        }
    if isinstance(cond, OrC):
        return {
            "kind": "or",
            "left": condition_to_dict(cond.left),
            "right": condition_to_dict(cond.right),
        }
    if isinstance(cond, NotC):
        return {"kind": "not", "inner": condition_to_dict(cond.inner)}
    if isinstance(cond, TrueC):
        return {"kind": "true"}
    raise TypeError(f"cannot serialize condition {cond!r}")


def condition_from_dict(obj: Dict) -> Condition:
    kind = obj["kind"]
    if kind == "reg":
        return RegEq(obj["thread"], obj["name"], obj["value"])
    if kind == "mem":
        return MemEq(obj["loc"], obj["value"])
    if kind == "and":
        return AndC(condition_from_dict(obj["left"]), condition_from_dict(obj["right"]))
    if kind == "or":
        return OrC(condition_from_dict(obj["left"]), condition_from_dict(obj["right"]))
    if kind == "not":
        return NotC(condition_from_dict(obj["inner"]))
    if kind == "true":
        return TrueC()
    raise ValueError(f"unknown condition kind {kind!r}")


# ----------------------------------------------------------------------
# tests
# ----------------------------------------------------------------------

def _search_opts_to_obj(opts: Dict[str, object]) -> Dict:
    return {
        name: list(value) if isinstance(value, (tuple, list)) else value
        for name, value in sorted(opts.items())
    }


def _search_opts_from_obj(obj: Dict) -> Dict[str, object]:
    return {
        name: tuple(value) if isinstance(value, list) else value
        for name, value in obj.items()
    }


def config_to_dict(config) -> Dict:
    """A :class:`~repro.litmus.config.RunConfig` as JSON-native data.

    Iterates the dataclass fields so a config field added later is
    serialized automatically — worker IPC used to rebuild configs from a
    hand-picked subset of fields, silently dropping the rest.
    """
    from dataclasses import fields

    payload = {}
    for f in fields(config):
        value = getattr(config, f.name)
        if f.name == "search_opts":
            value = _search_opts_to_obj(dict(value))
        payload[f.name] = value
    return payload


def config_from_dict(obj: Dict):
    """Rebuild a :class:`~repro.litmus.config.RunConfig` from
    :func:`config_to_dict` output."""
    from .config import RunConfig

    data = dict(obj)
    if "search_opts" in data:
        data["search_opts"] = _search_opts_from_obj(data["search_opts"])
    return RunConfig(**data)


def test_to_dict(test) -> Dict:
    """A :class:`~repro.litmus.test.LitmusTest` as JSON-native data."""
    return {
        "format": FORMAT_VERSION,
        "name": test.name,
        "program": program_to_dict(test.program),
        "condition": condition_to_dict(test.condition),
        "expect": test.expect.value,
        "description": test.description,
        "expect_other": {
            model: verdict.value
            for model, verdict in sorted(test.expect_other.items())
        },
        "figure": test.figure,
        "search_opts": _search_opts_to_obj(test.search_opts),
    }


def test_from_dict(obj: Dict):
    from .test import Expect, LitmusTest

    return LitmusTest(
        name=obj["name"],
        program=program_from_dict(obj["program"]),
        condition=condition_from_dict(obj["condition"]),
        expect=Expect(obj["expect"]),
        description=obj.get("description", ""),
        expect_other={
            model: Expect(v) for model, v in obj.get("expect_other", {}).items()
        },
        figure=obj.get("figure"),
        search_opts=_search_opts_from_obj(obj.get("search_opts", {})),
    )


# ----------------------------------------------------------------------
# litmus text (the parser's format, inverted)
# ----------------------------------------------------------------------

def _qualifiers(sem: Sem, scope) -> str:
    suffix = f".{sem.value}"
    if scope is not None:
        suffix += f".{scope.value}"
    return suffix


def _thread_header(tid: ThreadId) -> str:
    if tid.gpu is None:
        return f"thread host{tid.thread}"
    return f"thread d{tid.gpu}c{tid.cta}t{tid.thread}"


def instruction_to_text(instr: Instruction) -> str:
    """One instruction as the dotted assembly line the parser accepts."""
    if isinstance(instr, Ld):
        mnemonic = "ld.volatile" if instr.volatile else (
            "ld" + _qualifiers(instr.sem, instr.scope)
        )
        if instr.vec > 1:
            mnemonic += f".v{instr.vec}"
        dst = instr.dst if isinstance(instr.dst, tuple) else (instr.dst,)
        return f"{mnemonic} {', '.join(dst)}, [{instr.loc}]"
    if isinstance(instr, St):
        mnemonic = "st.volatile" if instr.volatile else (
            "st" + _qualifiers(instr.sem, instr.scope)
        )
        if instr.vec > 1:
            mnemonic += f".v{instr.vec}"
        src = instr.src if isinstance(instr.src, tuple) else (instr.src,)
        operands = ", ".join(str(s) for s in src)
        return f"{mnemonic} [{instr.loc}], {operands}"
    if isinstance(instr, Atom):
        operands = ", ".join(str(o) for o in instr.operands)
        return (
            f"atom{_qualifiers(instr.sem, instr.scope)}.{instr.op.value} "
            f"{instr.dst}, [{instr.loc}], {operands}"
        )
    if isinstance(instr, Red):
        operands = ", ".join(str(o) for o in instr.operands)
        return (
            f"red{_qualifiers(instr.sem, instr.scope)}.{instr.op.value} "
            f"[{instr.loc}], {operands}"
        )
    if isinstance(instr, Fence):
        return f"fence{_qualifiers(instr.sem, instr.scope)}"
    if isinstance(instr, Bar):
        return f"bar.{instr.op.value} {instr.barrier}"
    raise TypeError(f"cannot unparse instruction {instr!r}")


def condition_to_text(cond: Condition) -> str:
    """The condition in the grammar ``parse_condition`` accepts.

    Condition ``repr`` was designed to be re-parseable; the one exception
    is :class:`TrueC`, whose ``true`` spelling the grammar has no atom
    for — and which no meaningful litmus test uses as its condition.
    """
    if isinstance(cond, TrueC):
        raise TypeError("a bare 'true' condition has no litmus text form")
    return repr(cond)


def test_to_litmus(test) -> str:
    """A :class:`~repro.litmus.test.LitmusTest` as parseable litmus text.

    Inverse of :func:`~repro.litmus.parser.parse_litmus` for the fields
    the text format carries: ``parse_litmus(test_to_litmus(t))`` restores
    the name, program (threads, placements, covering shape), condition,
    and expected verdict.  Description, per-model expectations and search
    options are JSON-only — use :func:`test_to_dict` when those matter.
    The fuzzer's shrunk repros are emitted in this format so a
    discrepancy can be replayed from a plain text artifact.
    """
    from .test import Expect

    lines = [f"ptx test {test.name}"]
    for thread in test.program.threads:
        lines.append(_thread_header(thread.tid))
        for instr in thread.instructions:
            lines.append(f"  {instruction_to_text(instr)}")
    keyword = "forbidden" if test.expect is Expect.FORBIDDEN else "allowed"
    lines.append(f"{keyword}: {condition_to_text(test.condition)}")
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# outcomes and results
# ----------------------------------------------------------------------

def outcome_to_dict(outcome: Outcome) -> Dict:
    return {
        "registers": [
            [thread_id_to_obj(tid), name, value]
            for (tid, name), value in outcome.registers
        ],
        "memory": [
            [loc, sorted(values)] for loc, values in outcome.memory
        ],
    }


def outcome_from_dict(obj: Dict) -> Outcome:
    return Outcome(
        registers=tuple(
            ((thread_id_from_obj(tid), name), value)
            for tid, name, value in obj["registers"]
        ),
        memory=tuple(
            (loc, frozenset(values)) for loc, values in obj["memory"]
        ),
    )


def solver_stats_to_dict(stats: SolverStats) -> Dict:
    return stats.as_dict()


def solver_stats_from_dict(obj: Dict) -> SolverStats:
    return SolverStats(**obj)


def enum_stats_to_dict(stats: EnumStats) -> Dict:
    return stats.as_dict()


def enum_stats_from_dict(obj: Dict) -> EnumStats:
    return EnumStats.from_dict(obj)


def certificate_to_dict(cert: Certificate) -> Dict:
    return {
        "polarity": cert.polarity,
        "status": cert.status,
        "digest": cert.digest,
        "steps": cert.steps,
        "clauses": cert.clauses,
        "check_time": cert.check_time,
        "detail": cert.detail,
    }


def certificate_from_dict(obj: Dict) -> Certificate:
    return Certificate(
        polarity=obj["polarity"],
        status=obj["status"],
        digest=obj.get("digest"),
        steps=obj.get("steps", 0),
        clauses=obj.get("clauses", 0),
        check_time=obj.get("check_time", 0.0),
        detail=obj.get("detail"),
    )


def result_to_dict(result, include_test: bool = True) -> Dict:
    """A :class:`~repro.litmus.runner.LitmusResult` as JSON-native data.

    ``include_test=False`` drops the (bulky) test payload — the cache
    stores results under a key derived from the test, so re-serializing
    the test inside every entry would be redundant.
    """
    payload = {
        "format": FORMAT_VERSION,
        "model": result.model,
        "observed": result.observed,
        "outcomes": sorted(
            (outcome_to_dict(o) for o in result.outcomes), key=canonical_json
        ),
        "elapsed": result.elapsed,
        "solver_stats": (
            solver_stats_to_dict(result.solver_stats)
            if result.solver_stats is not None else None
        ),
        "enum_stats": (
            enum_stats_to_dict(result.enum_stats)
            if result.enum_stats is not None else None
        ),
        "status": result.status,
        "detail": result.detail,
        "certificate": (
            certificate_to_dict(result.certificate)
            if result.certificate is not None else None
        ),
    }
    if include_test:
        payload["test"] = test_to_dict(result.test)
    return payload


def result_from_dict(obj: Dict, test=None):
    """Rebuild a result; pass ``test`` when the payload omits it."""
    from .runner import LitmusResult

    if test is None:
        test = test_from_dict(obj["test"])
    return LitmusResult(
        test=test,
        model=obj["model"],
        observed=obj["observed"],
        outcomes=frozenset(outcome_from_dict(o) for o in obj["outcomes"]),
        elapsed=obj.get("elapsed"),
        solver_stats=(
            solver_stats_from_dict(obj["solver_stats"])
            if obj.get("solver_stats") is not None else None
        ),
        enum_stats=(
            enum_stats_from_dict(obj["enum_stats"])
            if obj.get("enum_stats") is not None else None
        ),
        status=obj.get("status", "ok"),
        detail=obj.get("detail"),
        certificate=(
            certificate_from_dict(obj["certificate"])
            if obj.get("certificate") is not None else None
        ),
    )


# ----------------------------------------------------------------------
# verdict payloads (the byte-comparable form)
# ----------------------------------------------------------------------

#: timing fields that legitimately differ between two runs of the same
#: decision (wall clocks, not verdict content)
_VOLATILE_RESULT_FIELDS = ("elapsed",)


def verdict_payload(result, include_test: bool = False) -> Dict:
    """The result as a dict with every wall-clock field normalized out.

    Two computations of the same (test, config) task must produce
    *byte-identical* canonical JSON of this payload — counters, outcome
    sets, certificates and all — regardless of where they ran (in
    process, in a worker, behind the verdict service) or how long they
    took.  This is the object the serving layer's equivalence gate
    compares; only genuinely nondeterministic fields (elapsed wall time,
    solver/checker solve times) are zeroed.
    """
    payload = result_to_dict(result, include_test=include_test)
    for name in _VOLATILE_RESULT_FIELDS:
        payload.pop(name, None)
    if payload.get("solver_stats") is not None:
        payload["solver_stats"] = dict(payload["solver_stats"], solve_time=0.0)
    if payload.get("certificate") is not None:
        payload["certificate"] = dict(payload["certificate"], check_time=0.0)
    return payload


def verdict_digest(result) -> str:
    """A content address of the timing-normalized verdict payload."""
    import hashlib

    text = canonical_json(verdict_payload(result, include_test=False))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()
