"""Litmus tests: structure, conditions, standard suite, and runner."""

from .conditions import (
    AndC,
    Condition,
    ConditionSyntaxError,
    MemEq,
    NotC,
    OrC,
    RegEq,
    TrueC,
    parse_condition,
)
from .compare import (
    VARIANTS,
    Distinction,
    compare_on,
    distinguishing_tests,
    first_distinction,
)
from .explain import Explanation, explain
from .generator import (
    EDGE_NAMES,
    CycleError,
    GeneratedTest,
    classify,
    enumerate_cycles,
    generate,
    parse_cycle,
)
from ..cert import Certificate
from .cache import CacheStats, ResultCache, cache_key, default_cache_dir
from .config import RunConfig
from .runner import MODELS, LitmusResult, decide, run_litmus, run_suite, summarize
from .session import Session, SessionStats
from .suite import BY_NAME, PAPER_TESTS, SUITE, build_suite, tests_for_figures
from .test import Expect, LitmusTest, make_test

__all__ = [
    "AndC",
    "BY_NAME",
    "CacheStats",
    "Certificate",
    "Condition",
    "ConditionSyntaxError",
    "CycleError",
    "Distinction",
    "EDGE_NAMES",
    "Expect",
    "Explanation",
    "explain",
    "GeneratedTest",
    "VARIANTS",
    "classify",
    "compare_on",
    "distinguishing_tests",
    "enumerate_cycles",
    "first_distinction",
    "generate",
    "parse_cycle",
    "LitmusResult",
    "LitmusTest",
    "MemEq",
    "MODELS",
    "NotC",
    "OrC",
    "PAPER_TESTS",
    "RegEq",
    "ResultCache",
    "RunConfig",
    "SUITE",
    "Session",
    "SessionStats",
    "TrueC",
    "build_suite",
    "cache_key",
    "decide",
    "default_cache_dir",
    "make_test",
    "parse_condition",
    "run_litmus",
    "run_suite",
    "summarize",
    "tests_for_figures",
]
