"""Litmus tests: structure, conditions, standard suite, and runner."""

from .conditions import (
    AndC,
    Condition,
    ConditionSyntaxError,
    MemEq,
    NotC,
    OrC,
    RegEq,
    TrueC,
    parse_condition,
)
from .compare import (
    VARIANTS,
    Distinction,
    compare_on,
    distinguishing_tests,
    first_distinction,
)
from .explain import Explanation, explain
from .generator import (
    EDGE_NAMES,
    CycleError,
    GeneratedTest,
    classify,
    enumerate_cycles,
    generate,
    parse_cycle,
)
from .runner import MODELS, LitmusResult, run_litmus, run_suite, summarize
from .suite import BY_NAME, PAPER_TESTS, SUITE, build_suite
from .test import Expect, LitmusTest, make_test

__all__ = [
    "AndC",
    "BY_NAME",
    "Condition",
    "ConditionSyntaxError",
    "CycleError",
    "Distinction",
    "EDGE_NAMES",
    "Expect",
    "Explanation",
    "explain",
    "GeneratedTest",
    "VARIANTS",
    "classify",
    "compare_on",
    "distinguishing_tests",
    "enumerate_cycles",
    "first_distinction",
    "generate",
    "parse_cycle",
    "LitmusResult",
    "LitmusTest",
    "MemEq",
    "MODELS",
    "NotC",
    "OrC",
    "PAPER_TESTS",
    "RegEq",
    "SUITE",
    "TrueC",
    "build_suite",
    "make_test",
    "parse_condition",
    "run_litmus",
    "run_suite",
    "summarize",
]
