"""Litmus test structure and verdicts."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional, Tuple, Union

from ..ptx.program import Program
from ..search.ptx_search import Outcome
from .conditions import Condition, parse_condition


class Expect(enum.Enum):
    """The documented verdict of a test's condition under a model.

    ``TIMEOUT``/``ERROR`` never appear as *documented* expectations;
    they are the verdicts of runs the execution subsystem cut short
    (per-test deadline exceeded, or a worker failure), so sweeps report
    them in the same column instead of raising.
    """

    FORBIDDEN = "forbidden"
    ALLOWED = "allowed"
    TIMEOUT = "timeout"
    ERROR = "error"

    def __repr__(self) -> str:
        return self.value


@dataclass(frozen=True)
class LitmusTest:
    """A named program plus a final-state condition and expected verdicts.

    ``expect`` records the verdict under the reference PTX model;
    ``expect_other`` optionally records verdicts under other models
    (``"tso"``, ``"sc"``) for cross-model comparison.
    """

    name: str
    program: Program
    condition: Condition
    expect: Expect
    description: str = ""
    expect_other: Dict[str, Expect] = field(default_factory=dict)
    figure: Optional[str] = None  # which paper figure this test comes from
    #: extra search options (e.g. speculation_values for thin-air tests)
    search_opts: Dict[str, object] = field(default_factory=dict)

    @property
    def threads(self) -> Tuple:
        """The thread ids of the program, in declaration order."""
        return tuple(t.tid for t in self.program.threads)

    def expected(self, model: str = "ptx") -> Optional[Expect]:
        """The documented verdict under ``model`` (None if unrecorded)."""
        if model == "ptx":
            return self.expect
        return self.expect_other.get(model)

    def condition_observed(self, outcomes: FrozenSet[Outcome]) -> bool:
        """Whether any outcome satisfies the test condition."""
        threads = self.threads
        return any(self.condition.holds(outcome, threads) for outcome in outcomes)

    def to_dict(self) -> Dict:
        """Serialize (see :mod:`repro.litmus.serialize`)."""
        from .serialize import test_to_dict

        return test_to_dict(self)

    @classmethod
    def from_dict(cls, payload: Dict) -> "LitmusTest":
        """Rebuild from :meth:`to_dict` output."""
        from .serialize import test_from_dict

        return test_from_dict(payload)


def make_test(
    name: str,
    program: Program,
    condition: Union[str, Condition],
    expect: Union[str, Expect],
    description: str = "",
    figure: Optional[str] = None,
    search_opts: Optional[Dict[str, object]] = None,
    **expect_other: Union[str, Expect],
) -> LitmusTest:
    """Convenience constructor accepting string conditions and verdicts."""
    if isinstance(condition, str):
        condition = parse_condition(condition)
    if isinstance(expect, str):
        expect = Expect(expect)
    others = {
        model: verdict if isinstance(verdict, Expect) else Expect(verdict)
        for model, verdict in expect_other.items()
    }
    return LitmusTest(
        name=name,
        program=program,
        condition=condition,
        expect=expect,
        description=description,
        expect_other=others,
        figure=figure,
        search_opts=dict(search_opts or {}),
    )
