"""A text format for PTX litmus tests.

A lightweight line-oriented syntax modelled on the assembly listings in the
paper's figures::

    ptx test MP
    thread d0c0t0
      st.weak [x], 1
      st.release.gpu [y], 1
    thread d0c1t0
      ld.acquire.gpu r1, [y]
      ld.weak r2, [x]
    forbidden: 1:r1=1 & 1:r2=0

Thread headers name a placement (``d<gpu>c<cta>t<thread>`` or ``host<n>``).
Instruction mnemonics are dotted PTX syntax: ``ld``/``st``/``atom``/``red``
with ``.weak``/``.relaxed``/``.acquire``/``.release``/``.acq_rel`` and
``.cta``/``.gpu``/``.sys``; ``fence.sc.gpu``; ``membar.gl``-era spellings
are accepted as ``membar``; ``bar.sync 0``.  The final line gives the
condition and its expected verdict (``forbidden:`` or ``allowed:``).
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from ..core.scopes import (
    Scope,
    ThreadId,
    covering_shape,
    device_thread,
    host_thread,
)
from ..ptx.events import Sem
from ..ptx.isa import Atom, AtomOp, Bar, BarOp, Fence, Instruction, Ld, Red, St
from ..ptx.program import Program, ThreadCode
from .test import Expect, LitmusTest, make_test


class LitmusSyntaxError(ValueError):
    """Raised on malformed litmus text."""


_THREAD_RE = re.compile(r"^thread\s+(?:d(\d+)c(\d+)t(\d+)|host(\d+))\s*$")
_SEMS = {
    "weak": Sem.WEAK,
    "relaxed": Sem.RELAXED,
    "acquire": Sem.ACQUIRE,
    "release": Sem.RELEASE,
    "acq_rel": Sem.ACQ_REL,
    "sc": Sem.SC,
}
_SCOPES = {"cta": Scope.CTA, "gpu": Scope.GPU, "sys": Scope.SYS}
_ATOM_OPS = {op.value: op for op in AtomOp}


def _parse_thread_header(line: str) -> ThreadId:
    match = _THREAD_RE.match(line)
    if not match:
        raise LitmusSyntaxError(f"bad thread header: {line!r}")
    if match.group(4) is not None:
        return host_thread(int(match.group(4)))
    return device_thread(
        int(match.group(1)), int(match.group(2)), int(match.group(3))
    )


def _split_mnemonic(mnemonic: str) -> Tuple[str, Optional[Sem], Optional[Scope], List[str]]:
    parts = mnemonic.split(".")
    op = parts[0]
    sem: Optional[Sem] = None
    scope: Optional[Scope] = None
    extras: List[str] = []
    for part in parts[1:]:
        if part in _SEMS and sem is None:
            sem = _SEMS[part]
        elif part in _SCOPES and scope is None:
            scope = _SCOPES[part]
        else:
            extras.append(part)
    return op, sem, scope, extras


def _operand(text: str):
    text = text.strip()
    if re.fullmatch(r"-?\d+", text):
        return int(text)
    if re.fullmatch(r"[A-Za-z_]\w*", text):
        return text
    raise LitmusSyntaxError(f"bad operand: {text!r}")


def _loc(text: str) -> str:
    match = re.fullmatch(r"\[\s*([A-Za-z_]\w*)\s*\]", text.strip())
    if not match:
        raise LitmusSyntaxError(f"bad memory operand: {text!r}")
    return match.group(1)


def parse_instruction(line: str) -> Instruction:
    """Parse one PTX instruction line."""
    line = line.split("//")[0].strip().rstrip(";")
    parts = line.split(None, 1)
    mnemonic = parts[0]
    rest = parts[1] if len(parts) > 1 else ""
    operands = [p.strip() for p in rest.split(",")] if rest.strip() else []
    op, sem, scope, extras = _split_mnemonic(mnemonic)

    vec = 1
    for extra in extras:
        if extra in ("v2", "v4"):
            vec = int(extra[1])
    if op == "ld":
        if len(operands) != 1 + vec:
            raise LitmusSyntaxError(
                f"ld{'.v%d' % vec if vec > 1 else ''} needs "
                f"{vec} register(s) then [loc]: {line!r}"
            )
        dst = operands[0] if vec == 1 else tuple(operands[:vec])
        loc = _loc(operands[-1])
        volatile = "volatile" in extras
        if volatile:
            return Ld(dst=dst, loc=loc, volatile=True, vec=vec)
        return Ld(dst=dst, loc=loc, sem=sem or Sem.WEAK, scope=scope, vec=vec)
    if op == "st":
        if len(operands) != 1 + vec:
            raise LitmusSyntaxError(
                f"st{'.v%d' % vec if vec > 1 else ''} needs "
                f"[loc] then {vec} operand(s): {line!r}"
            )
        loc = _loc(operands[0])
        src = (
            _operand(operands[1])
            if vec == 1
            else tuple(_operand(o) for o in operands[1:])
        )
        volatile = "volatile" in extras
        if volatile:
            return St(loc=loc, src=src, volatile=True, vec=vec)
        return St(loc=loc, src=src, sem=sem or Sem.WEAK, scope=scope, vec=vec)
    if op in ("atom", "red"):
        atom_ops = [e for e in extras if e in _ATOM_OPS]
        if len(atom_ops) != 1:
            raise LitmusSyntaxError(f"{op} needs exactly one operation: {line!r}")
        atom_op = _ATOM_OPS[atom_ops[0]]
        if op == "atom":
            if len(operands) < 3:
                raise LitmusSyntaxError(f"atom needs 'dst, [loc], operands': {line!r}")
            return Atom(
                dst=operands[0], loc=_loc(operands[1]),
                op=atom_op,
                operands=tuple(_operand(o) for o in operands[2:]),
                sem=sem or Sem.RELAXED, scope=scope,
            )
        if len(operands) < 2:
            raise LitmusSyntaxError(f"red needs '[loc], operands': {line!r}")
        return Red(
            loc=_loc(operands[0]),
            op=atom_op,
            operands=tuple(_operand(o) for o in operands[1:]),
            sem=sem or Sem.RELAXED, scope=scope,
        )
    if op == "fence":
        return Fence(sem=sem or Sem.SC, scope=scope or Scope.SYS)
    if op == "membar":
        # membar is a synonym for fence.sc (Figure 3c); legacy level
        # suffixes (.cta/.gl/.sys) name scopes.
        level = {"gl": Scope.GPU}.get(extras[0] if extras else "", scope)
        return Fence(sem=Sem.SC, scope=level or Scope.SYS)
    if op == "bar":
        bar_op = BarOp.SYNC
        if extras and extras[0] in ("sync", "arrive", "red"):
            bar_op = BarOp(extras[0])
        barrier = int(operands[0]) if operands else 0
        return Bar(op=bar_op, barrier=barrier)
    raise LitmusSyntaxError(f"unknown instruction: {line!r}")


def parse_litmus(text: str) -> LitmusTest:
    """Parse a full litmus test from text."""
    name: Optional[str] = None
    threads: List[Tuple[ThreadId, List[Instruction]]] = []
    condition: Optional[str] = None
    expect: Optional[Expect] = None

    for raw in text.splitlines():
        line = raw.split("//")[0].strip()
        if not line:
            continue
        if line.startswith("ptx test"):
            name = line[len("ptx test"):].strip()
            continue
        if line.startswith("thread"):
            threads.append((_parse_thread_header(line), []))
            continue
        lowered = line.lower()
        for keyword, verdict in (
            ("forbidden:", Expect.FORBIDDEN),
            ("allowed:", Expect.ALLOWED),
        ):
            if lowered.startswith(keyword):
                condition = line[len(keyword):].strip()
                expect = verdict
                break
        else:
            if not threads:
                raise LitmusSyntaxError(
                    f"instruction before any thread header: {line!r}"
                )
            threads[-1][1].append(parse_instruction(line))
            continue

    if name is None:
        raise LitmusSyntaxError("missing 'ptx test <name>' header")
    if condition is None or expect is None:
        raise LitmusSyntaxError("missing 'forbidden:'/'allowed:' condition line")
    if not threads:
        raise LitmusSyntaxError("no threads")

    program = Program(
        name=name,
        threads=tuple(
            ThreadCode(tid=tid, instructions=tuple(instrs))
            for tid, instrs in threads
        ),
        # the text format carries placements but no topology line: infer
        # the canonical covering shape (identical to the default when all
        # threads fit it, so ordinary tests round-trip bit-exactly)
        shape=covering_shape(tid for tid, _ in threads),
    )
    return make_test(name, program, condition, expect)
