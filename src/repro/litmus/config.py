"""Run configuration for the litmus execution subsystem.

A :class:`RunConfig` bundles every knob the runner, the parallel
:class:`~repro.litmus.session.Session`, and the on-disk result cache
understand — model, engine, search options, per-test timeout, worker
count, cache policy — into one frozen, hashable value.  It replaces the
ad-hoc ``**opts`` threading that used to flow through ``_filter_opts``:
the same object configures a single :func:`~repro.litmus.runner.run_litmus`
call, a whole suite sweep, and a model-comparison search.

The object is immutable so it can be shared between worker processes,
used as (part of) a cache key, and evolved with :meth:`RunConfig.evolve`
without aliasing surprises.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Dict, Mapping, Optional, Tuple

from ..registry import (
    engine_names,
    resolve_engine,
    resolve_kernel,
    resolve_model,
)

#: Engine names the runner knows how to drive (re-exported for
#: compatibility; the authoritative table with capability flags is
#: :data:`repro.registry.ENGINES`).
ENGINES: Tuple[str, ...] = engine_names()


def _freeze_value(value):
    """Normalize an option value to an immutable, comparable form."""
    if isinstance(value, (list, tuple)):
        return tuple(_freeze_value(v) for v in value)
    if isinstance(value, (set, frozenset)):
        return tuple(sorted(_freeze_value(v) for v in value))
    return value


def freeze_opts(opts: Mapping[str, object]) -> Tuple[Tuple[str, object], ...]:
    """Search options as a sorted tuple of pairs (hashable, deterministic)."""
    return tuple(
        (name, _freeze_value(value)) for name, value in sorted(opts.items())
    )


@dataclass(frozen=True)
class RunConfig:
    """Everything that determines how litmus tests are executed.

    Parameters mirror the execution stack top to bottom:

    * ``model``/``engine``/``search_opts`` pick the decision procedure
      (what used to be ``run_litmus``'s keyword surface);
    * ``timeout`` bounds each test's wall clock (seconds; ``None`` = no
      bound).  A test exceeding it gets a ``TIMEOUT`` verdict instead of
      hanging the sweep;
    * ``jobs`` is the worker-process count (1 = in-process sequential,
      0 = one worker per CPU);
    * ``use_cache``/``cache_dir`` control the content-addressed result
      cache (``cache_dir=None`` with ``use_cache=True`` falls back to
      ``$PTXMM_CACHE_DIR`` or ``~/.cache/ptxmm``);
    * ``max_attempts`` bounds retry-on-worker-death per test;
    * ``certify`` asks for verdict certificates: tests decidable by one
      bounded SAT query are decided through the proof-logging path, the
      resulting DRAT trace or witness is validated by the independent
      checker (:mod:`repro.cert`), and the certificate rides on the
      result.  A verdict whose certificate fails the check is downgraded
      to ERROR; undecidable-by-SAT tests fall back to the enumerative
      engine with a ``skipped`` certificate;
    * ``kernel`` picks the relation representation the enumerative
      searches run on (``set``/``bit``/``compiled``; see
      :data:`repro.registry.KERNELS`).  Outcomes are kernel-independent;
      models without a kernel surface ignore the knob.

    ``search_opts`` may be given as a mapping; it is normalized to a
    sorted tuple of pairs so configs hash and compare structurally.
    """

    model: str = "ptx"
    engine: str = "enumerative"
    search_opts: Tuple[Tuple[str, object], ...] = ()
    timeout: Optional[float] = None
    jobs: int = 1
    use_cache: bool = False
    cache_dir: Optional[str] = None
    max_attempts: int = 3
    certify: bool = False
    kernel: str = "bit"

    def __post_init__(self):
        if isinstance(self.search_opts, Mapping):
            object.__setattr__(self, "search_opts", freeze_opts(self.search_opts))
        else:
            object.__setattr__(
                self, "search_opts", freeze_opts(dict(self.search_opts))
            )
        # uniform unknown-name errors, one place (repro.registry)
        resolve_model(self.model)
        resolve_engine(self.engine)
        resolve_kernel(self.kernel)
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError("timeout must be positive (or None)")
        if self.jobs < 0:
            raise ValueError("jobs must be >= 0 (0 = one worker per CPU)")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")

    @property
    def opts(self) -> Dict[str, object]:
        """The search options as a plain dict (a fresh copy)."""
        return dict(self.search_opts)

    def evolve(self, **changes) -> "RunConfig":
        """A copy with the given fields replaced (``replace`` analog)."""
        current = {f.name: getattr(self, f.name) for f in fields(self)}
        current.update(changes)
        return RunConfig(**current)

    def for_model(self, model: str) -> "RunConfig":
        """The same config pointed at a different model."""
        return self.evolve(model=model)
