"""Final-state conditions for litmus tests.

A litmus test names an interesting final state — register values and/or
final memory contents — and asks whether any consistent execution produces
it.  Conditions are small boolean ASTs over register and memory atoms, with
a herd-style concrete syntax::

    1:r1=1 & 1:r2=0          # thread 1's r1 is 1 and its r2 is 0
    [x]=2 & ~(0:r1=1 | 0:r2=1)

``N:`` prefixes index the program's thread list.  Memory atoms ``[x]=v`` are
*existential* over the final values a location may settle to: under PTX's
partial coherence order a racy location can have several co-maximal writes,
any of which may be the final value.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Sequence

from ..core.scopes import ThreadId
from ..search.ptx_search import Outcome


class Condition:
    """Base class for final-state conditions."""

    def __and__(self, other: "Condition") -> "Condition":
        return AndC(self, other)

    def __or__(self, other: "Condition") -> "Condition":
        return OrC(self, other)

    def __invert__(self) -> "Condition":
        return NotC(self)

    def holds(self, outcome: Outcome, threads: Sequence[ThreadId]) -> bool:
        """Whether the outcome satisfies this condition."""
        raise NotImplementedError


@dataclass(frozen=True)
class RegEq(Condition):
    """``thread_index:reg = value``."""

    thread_index: int
    reg: str
    value: int

    def holds(self, outcome: Outcome, threads: Sequence[ThreadId]) -> bool:
        return outcome.register(threads[self.thread_index], self.reg) == self.value

    def __repr__(self) -> str:
        return f"{self.thread_index}:{self.reg}={self.value}"


@dataclass(frozen=True)
class MemEq(Condition):
    """``[loc] = value`` — some co-maximal write left this value."""

    loc: str
    value: int

    def holds(self, outcome: Outcome, threads: Sequence[ThreadId]) -> bool:
        return self.value in outcome.memory_values(self.loc)

    def __repr__(self) -> str:
        return f"[{self.loc}]={self.value}"


@dataclass(frozen=True)
class AndC(Condition):
    """Conjunction."""

    left: Condition
    right: Condition

    def holds(self, outcome: Outcome, threads: Sequence[ThreadId]) -> bool:
        return self.left.holds(outcome, threads) and self.right.holds(outcome, threads)

    def __repr__(self) -> str:
        return f"({self.left!r} & {self.right!r})"


@dataclass(frozen=True)
class OrC(Condition):
    """Disjunction."""

    left: Condition
    right: Condition

    def holds(self, outcome: Outcome, threads: Sequence[ThreadId]) -> bool:
        return self.left.holds(outcome, threads) or self.right.holds(outcome, threads)

    def __repr__(self) -> str:
        return f"({self.left!r} | {self.right!r})"


@dataclass(frozen=True)
class NotC(Condition):
    """Negation."""

    inner: Condition

    def holds(self, outcome: Outcome, threads: Sequence[ThreadId]) -> bool:
        return not self.inner.holds(outcome, threads)

    def __repr__(self) -> str:
        return f"~{self.inner!r}"


@dataclass(frozen=True)
class TrueC(Condition):
    """Trivially true (matches every outcome)."""

    def holds(self, outcome: Outcome, threads: Sequence[ThreadId]) -> bool:
        return True

    def __repr__(self) -> str:
        return "true"


class ConditionSyntaxError(ValueError):
    """Raised on malformed condition text."""


_TOKEN = re.compile(
    r"\s*(?:(?P<lpar>\()|(?P<rpar>\))|(?P<and>&)|(?P<or>\|)|(?P<not>~)"
    r"|(?P<reg>(?P<ti>\d+):(?P<rn>[A-Za-z_]\w*)\s*==?\s*(?P<rv>-?\d+))"
    r"|(?P<mem>\[(?P<ml>[A-Za-z_]\w*)\]\s*==?\s*(?P<mv>-?\d+)))"
)


def parse_condition(text: str) -> Condition:
    """Parse the herd-style condition syntax into a :class:`Condition`.

    Grammar (``~`` binds tightest, then ``&``, then ``|``)::

        cond  := term ('|' term)*
        term  := factor ('&' factor)*
        factor:= '~' factor | '(' cond ')' | atom
        atom  := N:reg=val | [loc]=val
    """
    tokens = []
    pos = 0
    while pos < len(text):
        match = _TOKEN.match(text, pos)
        if not match:
            if text[pos:].strip():
                raise ConditionSyntaxError(f"bad condition near {text[pos:]!r}")
            break
        pos = match.end()
        if match.group("lpar"):
            tokens.append(("(", None))
        elif match.group("rpar"):
            tokens.append((")", None))
        elif match.group("and"):
            tokens.append(("&", None))
        elif match.group("or"):
            tokens.append(("|", None))
        elif match.group("not"):
            tokens.append(("~", None))
        elif match.group("reg"):
            tokens.append(
                ("atom", RegEq(int(match.group("ti")), match.group("rn"), int(match.group("rv"))))
            )
        elif match.group("mem"):
            tokens.append(("atom", MemEq(match.group("ml"), int(match.group("mv")))))

    index = 0

    def peek():
        return tokens[index][0] if index < len(tokens) else None

    def parse_or() -> Condition:
        nonlocal index
        left = parse_and()
        while peek() == "|":
            index += 1
            left = OrC(left, parse_and())
        return left

    def parse_and() -> Condition:
        nonlocal index
        left = parse_factor()
        while peek() == "&":
            index += 1
            left = AndC(left, parse_factor())
        return left

    def parse_factor() -> Condition:
        nonlocal index
        kind = peek()
        if kind == "~":
            index += 1
            return NotC(parse_factor())
        if kind == "(":
            index += 1
            inner = parse_or()
            if peek() != ")":
                raise ConditionSyntaxError("unbalanced parentheses")
            index += 1
            return inner
        if kind == "atom":
            atom = tokens[index][1]
            index += 1
            return atom
        raise ConditionSyntaxError(f"unexpected token in {text!r}")

    if not tokens:
        raise ConditionSyntaxError("empty condition")
    result = parse_or()
    if index != len(tokens):
        raise ConditionSyntaxError(f"trailing tokens in {text!r}")
    return result
