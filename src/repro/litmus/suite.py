"""The standard litmus-test suite.

Every litmus test appearing in the paper (Figures 5, 6, 8, 9, and the
coherence/scope discussions) is encoded here, together with the classic
weak-memory shapes (LB, IRIW, WRC, 2+2W, S, R) in scope/strength variants
that probe PTX-specific behaviour:

* scope inclusion — `.cta`-scoped synchronization fails across CTAs,
  `.gpu`-scoped fails across devices (Table 1);
* non-multi-copy-atomicity — IRIW is allowed with acquire loads and only
  forbidden with morally strong ``fence.sc`` (§3.4);
* racy-but-defined semantics — weak variants of the coherence shapes are
  allowed rather than undefined (§3.3);
* RMW atomicity is only guaranteed against morally strong accesses (§8.9.3).

Expected verdicts are recorded for the PTX model and, where instructive,
for the TSO and SC baselines.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..core.scopes import Scope, device_thread
from ..ptx.events import Sem
from ..ptx.isa import AtomOp, BarOp, Ld, St
from ..ptx.program import Program, ProgramBuilder, ThreadCode
from .test import LitmusTest, make_test

# Standard thread placements.
T0 = device_thread(0, 0, 0)
T1 = device_thread(0, 1, 0)          # different CTA, same GPU
T2 = device_thread(0, 2, 0)
T1_SAME_CTA = device_thread(0, 0, 1)  # same CTA as T0
T1_OTHER_GPU = device_thread(1, 0, 0)  # different GPU


def _mp(name, st_sem, st_scope, ld_sem, ld_scope, consumer, **kw):
    """Message passing: producer writes data then flag; consumer reads
    flag then data.  Interesting outcome: flag seen, data stale."""
    program = (
        ProgramBuilder(name)
        .thread(T0)
        .st("x", 1)
        .st("y", 1, sem=st_sem, scope=st_scope)
        .thread(consumer)
        .ld("r1", "y", sem=ld_sem, scope=ld_scope)
        .ld("r2", "x")
        .build()
    )
    return make_test(name, program, "1:r1=1 & 1:r2=0", **kw)


def _sb(name, fence_scope, t_b, **kw):
    """Store buffering with ``fence.sc`` fences (Figure 6)."""
    program = (
        ProgramBuilder(name)
        .thread(T0).st("x", 1).fence(Sem.SC, fence_scope).ld("r1", "y")
        .thread(t_b).st("y", 1).fence(Sem.SC, fence_scope).ld("r2", "x")
        .build()
    )
    return make_test(name, program, "0:r1=0 & 1:r2=0", **kw)


def build_suite() -> Tuple[LitmusTest, ...]:
    """Construct the full standard suite."""
    tests = []

    # ------------------------------------------------------------------
    # Figure 5: message passing
    # ------------------------------------------------------------------
    tests.append(_mp(
        "MP+rel_acq.gpu", Sem.RELEASE, Scope.GPU, Sem.ACQUIRE, Scope.GPU, T1,
        expect="forbidden", figure="5", tso="forbidden", sc="forbidden",
        description="Figure 5: release/acquire at .gpu scope across CTAs.",
    ))
    tests.append(_mp(
        "MP+rel_acq.cta_same_cta", Sem.RELEASE, Scope.CTA, Sem.ACQUIRE,
        Scope.CTA, T1_SAME_CTA,
        expect="forbidden",
        description=".cta-scoped synchronization works within a CTA.",
    ))
    tests.append(_mp(
        "MP+rel_acq.cta_cross_cta", Sem.RELEASE, Scope.CTA, Sem.ACQUIRE,
        Scope.CTA, T1,
        expect="allowed", sc="forbidden",
        description=".cta-scoped synchronization does NOT reach across CTAs "
                    "(scope inclusion fails, so the pair is not morally strong).",
    ))
    tests.append(_mp(
        "MP+rel_acq.gpu_cross_gpu", Sem.RELEASE, Scope.GPU, Sem.ACQUIRE,
        Scope.GPU, T1_OTHER_GPU,
        expect="allowed", sc="forbidden",
        description=".gpu-scoped synchronization does not reach across devices.",
    ))
    tests.append(_mp(
        "MP+rel_acq.sys_cross_gpu", Sem.RELEASE, Scope.SYS, Sem.ACQUIRE,
        Scope.SYS, T1_OTHER_GPU,
        expect="forbidden",
        description=".sys scope spans devices (Table 1).",
    ))
    tests.append(_mp(
        "MP+weak", Sem.WEAK, None, Sem.WEAK, None, T1,
        expect="allowed", tso="forbidden", sc="forbidden",
        description="Unsynchronized MP is racy; the stale-data outcome is allowed.",
    ))
    tests.append(_mp(
        "MP+rlx", Sem.RELAXED, Scope.GPU, Sem.RELAXED, Scope.GPU, T1,
        expect="allowed",
        description="Relaxed operations are strong but do not synchronize.",
    ))
    volatile_mp = Program(
        name="MP+volatile",
        threads=(
            ThreadCode(tid=T0, instructions=(
                St(loc="x", src=1),
                St(loc="y", src=1, volatile=True),
            )),
            ThreadCode(tid=T1, instructions=(
                Ld(dst="r1", loc="y", volatile=True),
                Ld(dst="r2", loc="x"),
            )),
        ),
    )
    tests.append(make_test(
        "MP+volatile", volatile_mp, "1:r1=1 & 1:r2=0", "allowed",
        description="§9.7.8.7: .volatile has the semantics of .relaxed.sys — "
                    "strong and coherent, but it does NOT synchronize, so "
                    "volatile flags cannot publish data.",
    ))

    # fence-based release/acquire patterns (§8.7): the communicating write
    # after a release fence must be *strong*.
    fence_mp = (
        ProgramBuilder("MP+fence.acq_rel")
        .thread(T0).st("x", 1).fence(Sem.ACQ_REL, Scope.GPU)
        .st("y", 1, sem=Sem.RELAXED, scope=Scope.GPU)
        .thread(T1).ld("r1", "y", sem=Sem.RELAXED, scope=Scope.GPU)
        .fence(Sem.ACQ_REL, Scope.GPU).ld("r2", "x")
        .build()
    )
    tests.append(make_test(
        "MP+fence.acq_rel", fence_mp, "1:r1=1 & 1:r2=0", "forbidden",
        description="Release/acquire patterns built from fences plus relaxed "
                    "accesses (§8.7).",
    ))
    fence_mp_weak = (
        ProgramBuilder("MP+fence_weak_write")
        .thread(T0).st("x", 1).fence(Sem.ACQ_REL, Scope.GPU).st("y", 1)
        .thread(T1).ld("r1", "y", sem=Sem.RELAXED, scope=Scope.GPU)
        .fence(Sem.ACQ_REL, Scope.GPU).ld("r2", "x")
        .build()
    )
    tests.append(make_test(
        "MP+fence_weak_write", fence_mp_weak, "1:r1=1 & 1:r2=0", "allowed",
        description="A WEAK write after the release fence does not complete "
                    "the release pattern (§8.7 requires a strong write).",
    ))

    # ------------------------------------------------------------------
    # Figure 6: store buffering
    # ------------------------------------------------------------------
    tests.append(_sb(
        "SB+fence.sc.gpu", Scope.GPU, T1,
        expect="forbidden", figure="6", tso="forbidden", sc="forbidden",
        description="Figure 6: morally strong fence.sc pairs restore SC for SB.",
    ))
    tests.append(_sb(
        "SB+fence.sc.cta_cross_cta", Scope.CTA, T1,
        expect="allowed", sc="forbidden",
        description="fence.sc at .cta scope across CTAs: the fences are not "
                    "morally strong, so sc order does not relate them.",
    ))
    sb_weak = (
        ProgramBuilder("SB+weak")
        .thread(T0).st("x", 1).ld("r1", "y")
        .thread(T1).st("y", 1).ld("r2", "x")
        .build()
    )
    tests.append(make_test(
        "SB+weak", sb_weak, "0:r1=0 & 1:r2=0", "allowed",
        tso="allowed", sc="forbidden",
        description="Bare SB: both loads may miss both stores (store buffers).",
    ))
    sb_rel_acq = (
        ProgramBuilder("SB+rel_acq")
        .thread(T0).st("x", 1, sem=Sem.RELEASE, scope=Scope.GPU)
        .ld("r1", "y", sem=Sem.ACQUIRE, scope=Scope.GPU)
        .thread(T1).st("y", 1, sem=Sem.RELEASE, scope=Scope.GPU)
        .ld("r2", "x", sem=Sem.ACQUIRE, scope=Scope.GPU)
        .build()
    )
    tests.append(make_test(
        "SB+rel_acq", sb_rel_acq, "0:r1=0 & 1:r2=0", "allowed",
        description="Acquire/release alone cannot forbid SB; only fence.sc "
                    "can (§3.4.3).",
    ))

    # ------------------------------------------------------------------
    # Figure 8: load buffering / out of thin air
    # ------------------------------------------------------------------
    lb = (
        ProgramBuilder("LB+weak")
        .thread(T0).ld("r1", "y").st("x", 1)
        .thread(T1).ld("r2", "x").st("y", 1)
        .build()
    )
    tests.append(make_test(
        "LB+weak", lb, "0:r1=1 & 1:r2=1", "allowed",
        tso="forbidden", sc="forbidden",
        description="Load buffering without dependencies is allowed by PTX.",
    ))
    lb_deps = (
        ProgramBuilder("LB+deps")
        .thread(T0).ld("r1", "y").st("x", "r1")
        .thread(T1).ld("r2", "x").st("y", "r2")
        .build()
    )
    tests.append(make_test(
        "LB+deps", lb_deps, "0:r1=42 & 1:r2=42", "forbidden", figure="8",
        search_opts={"speculation_values": (42,)},
        description="Figure 8: No-Thin-Air forbids self-satisfying speculation.",
    ))

    # ------------------------------------------------------------------
    # Figure 9: coherence
    # ------------------------------------------------------------------
    corr = (
        ProgramBuilder("CoRR")
        .thread(T0).st("x", 1, sem=Sem.RELAXED, scope=Scope.GPU)
        .thread(T1).ld("r1", "x", sem=Sem.RELAXED, scope=Scope.GPU).ld("r2", "x")
        .build()
    )
    tests.append(make_test(
        "CoRR", corr, "1:r1=1 & 1:r2=0", "forbidden", figure="9a",
        tso="forbidden", sc="forbidden",
        description="Figure 9a: a later read may not see an older write.",
    ))
    corw = (
        ProgramBuilder("CoRW")
        .thread(T0).st("x", 1, sem=Sem.RELAXED, scope=Scope.GPU)
        .thread(T1).ld("r1", "x", sem=Sem.RELAXED, scope=Scope.GPU).st("x", 2)
        .build()
    )
    tests.append(make_test(
        "CoRW", corw, "1:r1=1 & [x]=1", "forbidden", figure="9b",
        description="Figure 9b: the read must not see a write coherence-after "
                    "the thread's own later write.",
    ))
    cowr = (
        ProgramBuilder("CoWR")
        .thread(T0).st("x", 1, sem=Sem.RELAXED, scope=Scope.GPU)
        .thread(T1).st("x", 2, sem=Sem.RELAXED, scope=Scope.GPU).ld("r1", "x")
        .build()
    )
    tests.append(make_test(
        "CoWR", cowr, "[x]=2 & 1:r1=1", "forbidden", figure="9c",
        description="Figure 9c: a read may not skip over its own thread's "
                    "coherence-later write.",
    ))
    coww = (
        ProgramBuilder("CoWW")
        .thread(T0).st("x", 1).st("x", 2)
        .build()
    )
    tests.append(make_test(
        "CoWW", coww, "[x]=1", "forbidden", figure="9d",
        tso="forbidden", sc="forbidden",
        description="Figure 9d: same-thread writes settle in program order.",
    ))
    corr_weak = (
        ProgramBuilder("CoRR+weak")
        .thread(T0).st("x", 1)
        .thread(T1).ld("r1", "x").ld("r2", "x")
        .build()
    )
    tests.append(make_test(
        "CoRR+weak", corr_weak, "1:r1=1 & 1:r2=0", "allowed",
        description="Racy weak reads are *defined* but unconstrained: PTX "
                    "does not outlaw racy programs (§3.3), it just withholds "
                    "coherence guarantees from morally weak pairs.",
    ))

    # ------------------------------------------------------------------
    # Non-multi-copy-atomicity: IRIW and WRC
    # ------------------------------------------------------------------
    iriw = (
        ProgramBuilder("IRIW+rel_acq")
        .thread(T0).st("x", 1, sem=Sem.RELEASE, scope=Scope.SYS)
        .thread(T1).st("y", 1, sem=Sem.RELEASE, scope=Scope.SYS)
        .thread(T2)
        .ld("r1", "x", sem=Sem.ACQUIRE, scope=Scope.SYS)
        .ld("r2", "y", sem=Sem.ACQUIRE, scope=Scope.SYS)
        .thread(device_thread(0, 3, 0))
        .ld("r3", "y", sem=Sem.ACQUIRE, scope=Scope.SYS)
        .ld("r4", "x", sem=Sem.ACQUIRE, scope=Scope.SYS)
        .build()
    )
    tests.append(make_test(
        "IRIW+rel_acq", iriw, "2:r1=1 & 2:r2=0 & 3:r3=1 & 3:r4=0", "allowed",
        tso="forbidden", sc="forbidden",
        description="PTX is not multi-copy atomic (§3.4): two readers may "
                    "disagree on the order of independent writes even with "
                    "acquire loads.",
    ))
    iriw_sc = (
        ProgramBuilder("IRIW+fence.sc")
        .thread(T0).st("x", 1, sem=Sem.RELEASE, scope=Scope.SYS)
        .thread(T1).st("y", 1, sem=Sem.RELEASE, scope=Scope.SYS)
        .thread(T2)
        .ld("r1", "x", sem=Sem.ACQUIRE, scope=Scope.SYS)
        .fence(Sem.SC, Scope.SYS)
        .ld("r2", "y", sem=Sem.ACQUIRE, scope=Scope.SYS)
        .thread(device_thread(0, 3, 0))
        .ld("r3", "y", sem=Sem.ACQUIRE, scope=Scope.SYS)
        .fence(Sem.SC, Scope.SYS)
        .ld("r4", "x", sem=Sem.ACQUIRE, scope=Scope.SYS)
        .build()
    )
    tests.append(make_test(
        "IRIW+fence.sc", iriw_sc, "2:r1=1 & 2:r2=0 & 3:r3=1 & 3:r4=0",
        "forbidden",
        description="Morally strong fence.sc pairs restore agreement on the "
                    "order of independent writes.",
    ))
    wrc = (
        ProgramBuilder("WRC+rel_acq")
        .thread(T0).st("x", 1, sem=Sem.RELAXED, scope=Scope.GPU)
        .thread(T1)
        .ld("r1", "x", sem=Sem.RELAXED, scope=Scope.GPU)
        .st("y", 1, sem=Sem.RELEASE, scope=Scope.GPU)
        .thread(T2)
        .ld("r2", "y", sem=Sem.ACQUIRE, scope=Scope.GPU)
        .ld("r3", "x")
        .build()
    )
    tests.append(make_test(
        "WRC+rel_acq", wrc, "1:r1=1 & 2:r2=1 & 2:r3=0", "forbidden",
        description="Write-read causality: cause extends through observation "
                    "(obs ; cause_base), so the release covers writes the "
                    "releasing thread has itself observed.",
    ))
    wrc_weak = (
        ProgramBuilder("WRC+weak_first_hop")
        .thread(T0).st("x", 1)
        .thread(T1)
        .ld("r1", "x", sem=Sem.RELAXED, scope=Scope.GPU)
        .st("y", 1, sem=Sem.RELEASE, scope=Scope.GPU)
        .thread(T2)
        .ld("r2", "y", sem=Sem.ACQUIRE, scope=Scope.GPU)
        .ld("r3", "x")
        .build()
    )
    tests.append(make_test(
        "WRC+weak_first_hop", wrc_weak, "1:r1=1 & 2:r2=1 & 2:r3=0", "allowed",
        description="A morally weak first hop (weak write vs relaxed read) "
                    "breaks the observation chain: the pair races.",
    ))

    # ------------------------------------------------------------------
    # RMW atomicity (§8.9.3)
    # ------------------------------------------------------------------
    inc2 = (
        ProgramBuilder("2xAtomAdd.gpu")
        .thread(T0).atom("r1", "x", AtomOp.ADD, 1, sem=Sem.RELAXED, scope=Scope.GPU)
        .thread(T1).atom("r2", "x", AtomOp.ADD, 1, sem=Sem.RELAXED, scope=Scope.GPU)
        .build()
    )
    tests.append(make_test(
        "2xAtomAdd.gpu", inc2, "[x]=1", "forbidden",
        description="Two morally strong fetch-adds cannot lose an update.",
    ))
    inc2_cta = (
        ProgramBuilder("2xAtomAdd.cta_cross_cta")
        .thread(T0).atom("r1", "x", AtomOp.ADD, 1, sem=Sem.RELAXED, scope=Scope.CTA)
        .thread(T1).atom("r2", "x", AtomOp.ADD, 1, sem=Sem.RELAXED, scope=Scope.CTA)
        .build()
    )
    tests.append(make_test(
        "2xAtomAdd.cta_cross_cta", inc2_cta, "[x]=1", "allowed",
        description="Atomicity is only guaranteed against morally strong "
                    "accesses: .cta-scoped RMWs in different CTAs may lose "
                    "updates (§8.9.3).",
    ))
    cas_exch = (
        ProgramBuilder("AtomExch+MP")
        .thread(T0).st("x", 1)
        .atom("r0", "y", AtomOp.EXCH, 1, sem=Sem.ACQ_REL, scope=Scope.GPU)
        .thread(T1)
        .ld("r1", "y", sem=Sem.ACQUIRE, scope=Scope.GPU)
        .ld("r2", "x")
        .build()
    )
    tests.append(make_test(
        "AtomExch+MP", cas_exch, "1:r1=1 & 1:r2=0", "forbidden",
        description="An acq_rel exchange acts as the releasing write of MP.",
    ))

    # ------------------------------------------------------------------
    # CTA execution barriers (§8.8.4)
    # ------------------------------------------------------------------
    bar_mp = (
        ProgramBuilder("MP+bar.sync")
        .thread(T0).st("x", 1).bar(BarOp.SYNC, 0)
        .thread(T1_SAME_CTA).bar(BarOp.SYNC, 0).ld("r1", "x")
        .build()
    )
    tests.append(make_test(
        "MP+bar.sync", bar_mp, "1:r1=0", "forbidden",
        description="bar.sync has release/acquire semantics at .cta scope.",
    ))
    bar_mp_mismatch = (
        ProgramBuilder("MP+bar.mismatch")
        .thread(T0).st("x", 1).bar(BarOp.SYNC, 0)
        .thread(T1_SAME_CTA).bar(BarOp.SYNC, 1).ld("r1", "x")
        .build()
    )
    tests.append(make_test(
        "MP+bar.mismatch", bar_mp_mismatch, "1:r1=0", "allowed",
        description="Different barrier resources do not synchronize with "
                    "each other.",
    ))
    bar_arrive = (
        ProgramBuilder("MP+bar.arrive")
        .thread(T0).st("x", 1).bar(BarOp.ARRIVE, 0)
        .thread(T1_SAME_CTA).bar(BarOp.SYNC, 0).ld("r1", "x")
        .build()
    )
    tests.append(make_test(
        "MP+bar.arrive", bar_arrive, "1:r1=0", "forbidden",
        description="bar.arrive synchronizes with bar.sync on the same "
                    "barrier (producer/consumer split barriers).",
    ))

    # ------------------------------------------------------------------
    # Classic shapes: S, R, 2+2W
    # ------------------------------------------------------------------
    s_test = (
        ProgramBuilder("S+rel_acq")
        .thread(T0).st("x", 2).st("y", 1, sem=Sem.RELEASE, scope=Scope.GPU)
        .thread(T1).ld("r1", "y", sem=Sem.ACQUIRE, scope=Scope.GPU).st("x", 1)
        .build()
    )
    tests.append(make_test(
        "S+rel_acq", s_test, "1:r1=1 & [x]=2", "forbidden",
        description="S shape: synchronization orders the writes to x in co "
                    "(Axiom 1, Coherence), so x=2 cannot be final.",
    ))
    r_test = (
        ProgramBuilder("R+fence.sc")
        .thread(T0).st("x", 1).fence(Sem.SC, Scope.GPU).st("y", 1, sem=Sem.RELAXED, scope=Scope.GPU)
        .thread(T1).st("y", 2, sem=Sem.RELAXED, scope=Scope.GPU).fence(Sem.SC, Scope.GPU).ld("r1", "x")
        .build()
    )
    tests.append(make_test(
        "R+fence.sc", r_test, "[y]=2 & 1:r1=0", "forbidden",
        description="R shape with morally strong fence.sc pairs.",
    ))
    w22 = (
        ProgramBuilder("2+2W+rel")
        .thread(T0).st("x", 1, sem=Sem.RELEASE, scope=Scope.GPU).st("y", 2, sem=Sem.RELEASE, scope=Scope.GPU)
        .thread(T1).st("y", 1, sem=Sem.RELEASE, scope=Scope.GPU).st("x", 2, sem=Sem.RELEASE, scope=Scope.GPU)
        .build()
    )
    tests.append(make_test(
        "2+2W+rel", w22, "[x]=1 & [y]=1", "allowed",
        sc="forbidden",
        description="2+2W: release writes alone do not forbid the both-"
                    "overwritten-backwards outcome in a non-MCA model.",
    ))

    # vector payload (§8.2.2): release/acquire publishes every element
    vec_payload = Program(
        name="MP+v2_payload",
        threads=(
            ThreadCode(tid=T0, instructions=(
                St(loc="x", src=(1, 2), vec=2),
                St(loc="y", src=1, sem=Sem.RELEASE, scope=Scope.GPU),
            )),
            ThreadCode(tid=T1, instructions=(
                Ld(dst="r0", loc="y", sem=Sem.ACQUIRE, scope=Scope.GPU),
                Ld(dst=("r1", "r2"), loc="x", vec=2),
            )),
        ),
    )
    tests.append(make_test(
        "MP+v2_payload", vec_payload,
        "1:r0=1 & (1:r1=0 | 1:r2=0)", "forbidden",
        description="A v2 store expands to per-element scalar writes "
                    "(§8.2.2); synchronization covers them all, so no "
                    "element can be observed stale past the flag.",
    ))

    # ------------------------------------------------------------------
    # one-sided synchronization: both halves are needed
    # ------------------------------------------------------------------
    tests.append(_mp(
        "MP+rel_only", Sem.RELEASE, Scope.GPU, Sem.RELAXED, Scope.GPU, T1,
        expect="allowed",
        description="A release store without an acquiring load does not "
                    "complete the acquire pattern — no synchronizes-with.",
    ))
    tests.append(_mp(
        "MP+acq_only", Sem.RELAXED, Scope.GPU, Sem.ACQUIRE, Scope.GPU, T1,
        expect="allowed",
        description="Dually, an acquire load cannot synchronize with a "
                    "relaxed store (the release pattern is missing).",
    ))
    sb_one_fence = (
        ProgramBuilder("SB+fence_one_side")
        .thread(T0).st("x", 1).fence(Sem.SC, Scope.GPU).ld("r1", "y")
        .thread(T1).st("y", 1).ld("r2", "x")
        .build()
    )
    tests.append(make_test(
        "SB+fence_one_side", sb_one_fence, "0:r1=0 & 1:r2=0", "allowed",
        description="A single fence.sc has no morally strong partner; SB "
                    "needs a fence in *each* thread (Figure 6).",
    ))

    # ------------------------------------------------------------------
    # transitive chains and RMW-mediated handoff
    # ------------------------------------------------------------------
    isa2 = (
        ProgramBuilder("ISA2+rel_acq")
        .thread(T0).st("x", 1).st("y", 1, sem=Sem.RELEASE, scope=Scope.GPU)
        .thread(T1)
        .ld("r1", "y", sem=Sem.ACQUIRE, scope=Scope.GPU)
        .st("z", 1, sem=Sem.RELEASE, scope=Scope.GPU)
        .thread(T2)
        .ld("r2", "z", sem=Sem.ACQUIRE, scope=Scope.GPU)
        .ld("r3", "x")
        .build()
    )
    tests.append(make_test(
        "ISA2+rel_acq", isa2, "1:r1=1 & 2:r2=1 & 2:r3=0", "forbidden",
        description="The ISA2 shape: base causality composes transitively "
                    "through an intermediate hop (§8.8.5's recursion).",
    ))
    cas_handoff = (
        ProgramBuilder("CAS+handoff")
        .thread(T0).st("x", 1)
        .atom("r0", "lock", AtomOp.CAS, (0, 1), sem=Sem.RELEASE, scope=Scope.GPU)
        .thread(T1)
        .atom("r1", "lock", AtomOp.CAS, (1, 2), sem=Sem.ACQUIRE, scope=Scope.GPU)
        .ld("r2", "x")
        .build()
    )
    tests.append(make_test(
        "CAS+handoff", cas_handoff, "1:r1=1 & 1:r2=0", "forbidden",
        description="Lock-style handoff: a successful acquiring CAS that "
                    "observes the releasing CAS's value sees its data.",
    ))
    red_mp = (
        ProgramBuilder("Red+MP")
        .thread(T0).st("x", 1).red("y", AtomOp.ADD, 1, sem=Sem.RELEASE, scope=Scope.GPU)
        .thread(T1)
        .ld("r1", "y", sem=Sem.ACQUIRE, scope=Scope.GPU)
        .ld("r2", "x")
        .build()
    )
    tests.append(make_test(
        "Red+MP", red_mp, "1:r1=1 & 1:r2=0", "forbidden",
        description="red (a reduction: an atom that returns no value) still "
                    "carries release semantics as the flag write.",
    ))

    return tuple(tests)


#: The suite, constructed once at import.
SUITE: Tuple[LitmusTest, ...] = build_suite()

#: Tests indexed by name.
BY_NAME: Dict[str, LitmusTest] = {test.name: test for test in SUITE}

#: The paper-figure tests only.
PAPER_TESTS: Tuple[LitmusTest, ...] = tuple(t for t in SUITE if t.figure)


def tests_for_figures(*figures: str) -> Tuple[LitmusTest, ...]:
    """The suite tests tagged with any of the given paper figures.

    Figure tags match on their numeric prefix, so ``tests_for_figures("9")``
    collects 9a–9d.
    """
    return tuple(
        test for test in SUITE
        if test.figure and any(test.figure.startswith(f) for f in figures)
    )
