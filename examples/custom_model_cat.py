"""Defining your own memory model in the cat DSL.

The textual model-definition language (herd's "cat", which the paper's
ecosystem [2, 9] uses) makes the toolkit extensible: write a model as
text, and every candidate execution the litmus engine produces can be
judged against it.

This example:

1. loads the shipped ``ptx.cat`` and shows it agreeing with the built-in
   spec on a litmus test's candidate executions;
2. defines a *custom* strengthened model — "PTX, but all communication is
   globally ordered" (a multi-copy-atomic PTX) — and shows which standard
   suite behaviours it would additionally forbid (IRIW!), i.e. exactly
   the non-MCA freedom §3.4 says real PTX keeps;
3. replays the history lesson: the pre-Volta ``ptx-legacy`` model
   (membar without Fence-SC order) allows the Figure 6 outcome.

Run:  python examples/custom_model_cat.py
"""

from repro.cat import cat_consistent, load_model, parse_cat
from repro.litmus import BY_NAME, run_litmus
from repro.ptx.model import build_env
from repro.search import candidate_executions

# A strengthened PTX: keep all six axioms (via the shipped model) but add
# a global-communication-order axiom that makes the model multi-copy
# atomic, DeNovo/SC-for-strong-ops style.
MCA_EXTRA = """
"MCA-extra"
let fr = rf^-1 ; co
let com_strong = morally_strong & (rf | co | fr)
acyclic com_strong | po as global_communication
"""


def agreement_demo() -> None:
    print("1. ptx.cat vs the built-in spec on MP's candidate executions:")
    ptx_cat = load_model("ptx")
    program = BY_NAME["MP+rel_acq.gpu"].program
    agree = total = 0
    for candidate in candidate_executions(program, include_inconsistent=True):
        env = build_env(candidate.execution)
        total += 1
        if cat_consistent(ptx_cat, env) == candidate.report.consistent:
            agree += 1
    print(f"   {agree}/{total} candidate executions judged identically")
    print()


def mca_strengthening() -> None:
    print("2. a custom strengthened model: PTX + global communication order")
    ptx_cat = load_model("ptx")
    extra = parse_cat(MCA_EXTRA)
    for name in ("IRIW+rel_acq", "SB+rel_acq", "MP+rlx", "LB+weak"):
        test = BY_NAME[name]
        ptx_allows = run_litmus(test).observed
        # the strengthened model allows an outcome if some candidate is
        # consistent with BOTH the PTX axioms and the extra axiom
        strengthened_allows = False
        for candidate in candidate_executions(test.program):
            env = build_env(candidate.execution)
            if cat_consistent(extra, env) and test.condition.holds(
                candidate.outcome(), test.threads
            ):
                strengthened_allows = True
                break
        marker = "  <-- MCA closes this" if ptx_allows and not strengthened_allows else ""
        print(
            f"   {name:<16} ptx={'allowed' if ptx_allows else 'forbidden':<10}"
            f"ptx+MCA={'allowed' if strengthened_allows else 'forbidden':<10}"
            f"{marker}"
        )
    print()
    print("   IRIW separates them: real PTX deliberately is NOT multi-copy")
    print("   atomic (§3.4) — hardware may propagate stores to different")
    print("   observers at different times.")
    print()


def generation_gap() -> None:
    print("3. the generation gap (§9.7.12.3): SB+fence.sc across models")
    test = BY_NAME["SB+fence.sc.gpu"]
    for model in ("ptx", "ptx-legacy", "tso", "sc"):
        verdict = run_litmus(test, model=model).verdict.value
        print(f"   {model:<11} {verdict}")
    print("   ptx-legacy reproduces the pre-Volta membar weakness that")
    print("   Sorensen & Donaldson observed on hardware [51].")


if __name__ == "__main__":
    agreement_demo()
    mca_strengthening()
    generation_gap()
