"""Alloy-workflow demo: relational assertions, SAT litmus, proof replay.

The paper's methodology (§5) in one script, all over the *same* model ASTs:

1. **check** — assert structural properties of the PTX model and ask the
   bounded model finder for counterexamples (Alloy's ``check``, Figure 16a);
2. **symbolic litmus** — decide a litmus outcome with one SAT query instead
   of enumerating executions (§5.2);
3. **prove** — replay the kernel derivations of the same inclusions for
   *all* instance sizes (the alloqc/Coq half, §5.3).

Run:  python examples/model_finding.py
"""

import time

from repro.kodkod import Bounds, Universe, check
from repro.kodkod.litmus import symbolic_outcome_allowed
from repro.lang import Subset, ast
from repro.litmus import BY_NAME, run_litmus
from repro.proof import all_lemmas
from repro.ptx import spec as ptx_spec


def check_assertions() -> None:
    print("1. Bounded checks of PTX model structure (Alloy-style):")
    universe = Universe(tuple(f"e{i}" for i in range(4)))
    assertions = {
        "sc ⊆ sw": Subset(ptx_spec.sc, ptx_spec.sw),
        "sw ⊆ cause": Subset(ptx_spec.sw, ptx_spec.cause),
        "cause_base transitive": Subset(
            ptx_spec.cause_base @ ptx_spec.cause_base, ptx_spec.cause_base
        ),
        # deliberately false, to show a counterexample being found:
        "cause ⊆ sw  (false!)": Subset(ptx_spec.cause, ptx_spec.sw),
    }
    for name, assertion in assertions.items():
        bounds = Bounds(universe)
        for rel_name in ptx_spec.BASE_RELATIONS:
            bounds.bound(rel_name, 2)
        for set_name in ptx_spec.BASE_SETS:
            bounds.bound(set_name, 1)
        started = time.perf_counter()
        counterexample = check(assertion, bounds)
        elapsed = time.perf_counter() - started
        verdict = "no counterexample" if counterexample is None else "COUNTEREXAMPLE"
        print(f"   {name:<28} {verdict:<18} ({elapsed:.2f}s)")
    print()


def symbolic_litmus() -> None:
    print("2. SAT-backed litmus checking vs explicit enumeration:")
    for name in ("MP+rel_acq.gpu", "SB+fence.sc.gpu", "IRIW+rel_acq", "CoRR"):
        test = BY_NAME[name]
        t0 = time.perf_counter()
        sat_verdict = symbolic_outcome_allowed(test)
        t_sat = time.perf_counter() - t0
        t0 = time.perf_counter()
        enum_verdict = run_litmus(test).observed
        t_enum = time.perf_counter() - t0
        agree = "agree" if sat_verdict == enum_verdict else "DISAGREE"
        print(
            f"   {name:<18} allowed={sat_verdict!s:<6} "
            f"SAT {t_sat*1000:6.1f}ms  enum {t_enum*1000:6.1f}ms  [{agree}]"
        )
    print()


def prove() -> None:
    print("3. Kernel-checked lemmas (valid at every instance size):")
    started = time.perf_counter()
    lemmas = all_lemmas()
    elapsed = time.perf_counter() - started
    for name in ("ptx.sc_in_cause", "ptx.sw_in_cause", "rc11.sb_in_hb"):
        print(f"   {name:<20} ⊢ {lemmas[name].concl!r}")
    print(f"   ... {len(lemmas)} lemmas replayed in {elapsed*1000:.1f}ms")
    print()
    print("The same AST feeds all three tools — the paper's 'no gaps'")
    print("workflow: what you test is what you prove.")


if __name__ == "__main__":
    check_assertions()
    symbolic_litmus()
    prove()
