"""Quickstart: check a message-passing litmus test under the PTX model.

This is the Figure 5 experiment from the paper: a producer writes data then
releases a flag; a consumer acquires the flag then reads the data.  With
properly scoped release/acquire synchronization the stale-data outcome
(`r1==1 && r2==0`) must be forbidden; drop the annotations and it appears.

Run:  python examples/quickstart.py
"""

from repro import Scope, Sem, allowed_outcomes, device_thread, ptx_builder

# Two threads in different CTAs of the same GPU.
producer = device_thread(gpu=0, cta=0, thread=0)
consumer = device_thread(gpu=0, cta=1, thread=0)


def message_passing(st_sem, st_scope, ld_sem, ld_scope, name):
    """Build the MP litmus program with the given flag annotations."""
    return (
        ptx_builder(name)
        .thread(producer)
        .st("data", 1)                                  # st.weak [data], 1
        .st("flag", 1, sem=st_sem, scope=st_scope)      # flag release
        .thread(consumer)
        .ld("r1", "flag", sem=ld_sem, scope=ld_scope)   # flag acquire
        .ld("r2", "data")                               # ld.weak r2, [data]
        .build()
    )


def stale_data_possible(program) -> bool:
    """Was the forbidden outcome (flag seen, data stale) observed?"""
    return any(
        outcome.register(consumer, "r1") == 1
        and outcome.register(consumer, "r2") == 0
        for outcome in allowed_outcomes(program)
    )


def main() -> None:
    synced = message_passing(
        Sem.RELEASE, Scope.GPU, Sem.ACQUIRE, Scope.GPU, "MP+rel_acq"
    )
    racy = message_passing(Sem.WEAK, None, Sem.WEAK, None, "MP+weak")

    print("Message passing under the PTX memory model (paper Figure 5)")
    print("------------------------------------------------------------")
    print("producer:  st.weak [data], 1 ; st.release.gpu [flag], 1")
    print("consumer:  ld.acquire.gpu r1, [flag] ; ld.weak r2, [data]")
    print()
    print("all outcomes of the synchronized version:")
    for outcome in sorted(allowed_outcomes(synced), key=repr):
        print("   ", outcome)
    print()
    verdict = "forbidden" if not stale_data_possible(synced) else "ALLOWED (?)"
    print(f"stale data with release/acquire at .gpu scope : {verdict}")
    verdict = "allowed" if stale_data_possible(racy) else "FORBIDDEN (?)"
    print(f"stale data with weak (unsynchronized) accesses: {verdict}")
    print()
    print("Release/acquire pairs synchronize (Figure 4's sw relation feeds")
    print("the cause order, and Axiom 6 'Causality' then forbids reading")
    print("stale data past an observed flag); weak accesses never do.")


if __name__ == "__main__":
    main()
