"""Explaining litmus verdicts: which axiom kills which behaviour?

The paper's litmus figures (5b, 6b) annotate each forbidden execution with
the relational cycle that violates an axiom.  The explainer regenerates
that analysis mechanically: for a forbidden condition it reports, per
axiom, how many exhibiting candidate executions the axiom rejects and a
concrete witness; for an allowed condition it prints a consistent witness
execution.

Run:  python examples/explain_verdicts.py
"""

from repro.litmus import BY_NAME, explain

SHOWCASE = [
    "MP+rel_acq.gpu",   # Figure 5: Causality (axiom 6) kills the stale read
    "SB+fence.sc.gpu",  # Figure 6: the fence.sc/causality interplay
    "CoWR",             # Figure 9c: SC-per-Location
    "2xAtomAdd.gpu",    # §8.9.3: Atomicity
    "LB+deps",          # Figure 8: No-Thin-Air
    "SB+weak",          # allowed: see the witness rf/co
]


def main() -> None:
    for name in SHOWCASE:
        print(explain(BY_NAME[name]).render())
        print("-" * 72)
    print("Each forbidden verdict is pinned to the specific axiom that")
    print("rejects the exhibiting executions — the mechanised counterpart")
    print("of the paper's annotated litmus diagrams.")


if __name__ == "__main__":
    main()
