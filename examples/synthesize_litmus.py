"""Synthesising litmus tests from critical cycles (diy-style), and
automatically comparing memory models.

The paper's ecosystem includes the diy test generator [2] and automated
litmus synthesis [35]; its comparison of PTX against HRF/HSA/DeNovo echoes
"Automatically Comparing Memory Consistency Models" [58].  This example
shows both reproduced capabilities:

1. synthesise the classic shapes from their cycle specifications, sweep
   annotation strengths, and classify the outcomes under PTX;
2. search the cycle space for the shortest programs that *distinguish*
   PTX from TSO and TSO from SC.

Run:  python examples/synthesize_litmus.py
"""

from repro.core import Scope
from repro.litmus import classify, first_distinction, generate
from repro.ptx.events import Sem

SHAPES = {
    "MP": "PodWW Rfe PodRR Fre",
    "SB": "PodWR Fre PodWR Fre",
    "LB": "PodRW Rfe PodRW Rfe",
    "IRIW": "Rfe PodRR Fre Rfe PodRR Fre",
    "2+2W": "PodWW Wse PodWW Wse",
    "CoWW": "PosWW Wsi",
}

VARIANTS = {
    "weak": dict(write_sem=Sem.WEAK, read_sem=Sem.WEAK, scope=None),
    "relaxed.gpu": dict(write_sem=Sem.RELAXED, read_sem=Sem.RELAXED,
                        scope=Scope.GPU),
    "rel_acq.gpu": dict(write_sem=Sem.RELEASE, read_sem=Sem.ACQUIRE,
                        scope=Scope.GPU),
    "fence.sc": dict(write_sem=Sem.RELAXED, read_sem=Sem.RELAXED,
                     scope=Scope.GPU, fence_po=(Sem.SC, Scope.GPU)),
}


def synthesis_table() -> None:
    print("PTX verdicts for synthesised critical cycles (rows) under")
    print("increasingly strong annotations (columns):")
    print(f"{'shape':<8}" + "".join(f"{v:>14}" for v in VARIANTS))
    for shape, spec in SHAPES.items():
        row = f"{shape:<8}"
        for kwargs in VARIANTS.values():
            try:
                generated = generate(spec, **kwargs)
                verdict = classify(generated, "ptx").value
            except ValueError:
                verdict = "n/a"
            row += f"{verdict:>14}"
        print(row)
    print()
    print("Every one of these cycles is forbidden under SC (that is what")
    print("makes them *critical*); PTX needs release/acquire for MP-like")
    print("shapes and fence.sc for SB/IRIW/2+2W-like shapes, and forbids")
    print("same-location CoWW unconditionally (SC-per-Location).")


def model_separation() -> None:
    print()
    print("Shortest synthesised programs separating the models:")
    for a, b in (("ptx", "tso"), ("tso", "sc")):
        distinction = first_distinction(a, b, max_length=4, limit=1)
        print(f"  {a} vs {b}: {distinction}")
    print()
    print("tso-vs-sc lands on store buffering — the textbook separator —")
    print("and ptx-vs-tso on a weak coherence shape TSO cannot exhibit.")


if __name__ == "__main__":
    synthesis_table()
    model_separation()
