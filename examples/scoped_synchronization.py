"""Which scope do I need?  A practitioner's sweep over the scope hierarchy.

The motivating question for scoped memory models (paper §2.1, Table 1):
synchronization annotated with a narrow scope is cheaper, but it only works
between threads the scope actually covers.  This example places producer
and consumer at increasing "distances" in the machine (same CTA, same GPU,
different GPU, host) and sweeps every scope annotation, printing which
combinations make message passing safe — exactly the inclusion rule of
moral strength (§8.6).

It also shows the two other synchronization styles of §3.4: CTA execution
barriers and fence.sc pairs.

Run:  python examples/scoped_synchronization.py
"""

from repro import Scope, Sem, allowed_outcomes, device_thread, ptx_builder
from repro.ptx import BarOp

PLACEMENTS = [
    ("same CTA", device_thread(0, 0, 0), device_thread(0, 0, 1)),
    ("same GPU, different CTA", device_thread(0, 0, 0), device_thread(0, 1, 0)),
    ("different GPU", device_thread(0, 0, 0), device_thread(1, 0, 0)),
]


def mp(producer, consumer, scope):
    return (
        ptx_builder(f"MP@{scope.value}")
        .thread(producer).st("data", 1).st("flag", 1, sem=Sem.RELEASE, scope=scope)
        .thread(consumer)
        .ld("r1", "flag", sem=Sem.ACQUIRE, scope=scope)
        .ld("r2", "data")
        .build()
    )


def safe(program, consumer) -> bool:
    """Message passing is safe when the stale-data outcome is forbidden."""
    return not any(
        o.register(consumer, "r1") == 1 and o.register(consumer, "r2") == 0
        for o in allowed_outcomes(program)
    )


def scope_sweep() -> None:
    print("Release/acquire message passing, scope × placement (Table 1):")
    header = f"{'placement':<26}" + "".join(
        f"{'.' + s.value:>8}" for s in Scope
    )
    print(header)
    for label, producer, consumer in PLACEMENTS:
        row = f"{label:<26}"
        for scope in Scope:
            verdict = "safe" if safe(mp(producer, consumer, scope), consumer) else "RACY"
            row += f"{verdict:>8}"
        print(row)
    print()
    print("A scope is sufficient exactly when it covers *both* threads:")
    print(".cta only within a CTA, .gpu within a device, .sys everywhere.")


def barrier_style() -> None:
    producer, consumer = device_thread(0, 0, 0), device_thread(0, 0, 1)
    program = (
        ptx_builder("MP+bar")
        .thread(producer).st("data", 1).bar(BarOp.SYNC, 0)
        .thread(consumer).bar(BarOp.SYNC, 0).ld("r1", "data")
        .build()
    )
    stale = any(
        o.register(consumer, "r1") == 0 for o in allowed_outcomes(program)
    )
    print("CTA execution barriers (§8.8.4): bar.sync pairs synchronize")
    print(f"  consumer can read stale data past the barrier: {stale}")
    print()


def fence_sc_style() -> None:
    t0, t1 = device_thread(0, 0, 0), device_thread(0, 1, 0)
    program = (
        ptx_builder("SB+fence.sc")
        .thread(t0).st("x", 1).fence(Sem.SC, Scope.GPU).ld("r1", "y")
        .thread(t1).st("y", 1).fence(Sem.SC, Scope.GPU).ld("r2", "x")
        .build()
    )
    both_zero = any(
        o.register(t0, "r1") == 0 and o.register(t1, "r2") == 0
        for o in allowed_outcomes(program)
    )
    print("fence.sc (§3.4.3): the only cure for store buffering —")
    print(f"  SB both-zero outcome with morally strong fence.sc: {both_zero}")
    print("  (acquire/release alone cannot forbid it; see SB+rel_acq in the")
    print("   litmus suite)")


if __name__ == "__main__":
    scope_sweep()
    print()
    barrier_style()
    fence_sc_style()
