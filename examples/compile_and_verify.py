"""Compile scoped C++ to PTX (Figure 11) and verify the mapping (Figure 12).

Walks the full §4–§6 pipeline on the paper's ISA2 release-sequence variant:

1. write a scoped C++ program using ``memory_order_seq_cst`` RMWs;
2. compile it with the Figure 11 mapping (and with the deliberately broken
   variant that elides ``.release`` from the RMW_SC row);
3. enumerate every legal PTX execution of each compiled program, lift it
   back to the source level (§5.2), and look for RC11 axiom violations.

The correct mapping admits none; the buggy one is caught violating RC11
Coherence — the exact corner case the paper found only with Coq.

Run:  python examples/compile_and_verify.py
"""

from repro import BUGGY_RMW_SC, MemOrder, STANDARD, Scope, compile_program, cpp_builder, device_thread
from repro.mapping import check_program_against_axiom
from repro.ptx.isa import AtomOp

T0 = device_thread(0, 0, 0)
T1 = device_thread(0, 1, 0)
T2 = device_thread(0, 2, 0)


def isa2_variant():
    """Figure 12a: Wna x; Wrel y || RMW_sc y; Wrlx y || Racq y; Rna x."""
    return (
        cpp_builder("ISA2-rmw")
        .thread(T0)
        .store("x", 1)                                        # (a) W_NA x
        .store("y", 1, mo=MemOrder.REL, scope=Scope.GPU)      # (b) W_REL y
        .thread(T1)
        .rmw("r1", "y", AtomOp.EXCH, 2, mo=MemOrder.SC, scope=Scope.GPU)  # (c)
        .store("y", 3, mo=MemOrder.RLX, scope=Scope.GPU)      # (d) W_RLX y
        .thread(T2)
        .load("r2", "y", mo=MemOrder.ACQ, scope=Scope.GPU)    # (e) R_ACQ y
        .load("r3", "x")                                      # (f) R_NA x
        .build()
    )


def show_compilation(source, scheme):
    compiled = compile_program(source, scheme)
    print(f"compiled with the {scheme.name!r} scheme:")
    for thread in compiled.target.threads:
        print(f"  thread {thread.tid}:")
        for instr in thread.instructions:
            print(f"    {instr}")
    return compiled


def main() -> None:
    source = isa2_variant()
    print("Source program (scoped C++, Figure 12a):")
    for thread in source.threads:
        print(f"  thread {thread.tid}:")
        for op in thread.ops:
            print(f"    {op}")
    print()

    show_compilation(source, STANDARD)
    print()
    show_compilation(source, BUGGY_RMW_SC)
    print()

    print("Searching lifted executions for RC11 axiom violations...")
    for scheme in (STANDARD, BUGGY_RMW_SC):
        for axiom in ("Coherence", "Atomicity", "SC"):
            counterexample = check_program_against_axiom(
                source, axiom, scheme=scheme
            )
            verdict = "VIOLATED" if counterexample else "holds"
            print(f"  {scheme.name:<14} {axiom:<10} {verdict}")
    print()
    print("Eliding the .release on the RMW_SC mapping breaks the release")
    print("sequence headed by (c): the gap between syncacqrel edges of")
    print("Figure 12b lets (f) read stale data, violating RC11 Coherence.")


if __name__ == "__main__":
    main()
