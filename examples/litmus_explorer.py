"""Run the full litmus suite across all three models, plus file-based tests.

Prints a cross-model comparison table (PTX vs TSO vs SC) over the standard
suite, highlighting where the scoped GPU model is weaker than the CPU
baselines — non-multi-copy-atomicity (IRIW), load buffering, and
scope-mismatch races.  Also demonstrates the textual litmus format.

Run:  python examples/litmus_explorer.py
"""

from repro import parse_litmus, run_litmus
from repro.litmus import SUITE

MEMBAR_TEST = """
ptx test SB+membar      // the pre-Volta spelling, Figure 3c: membar == fence.sc
thread d0c0t0
  st.weak [x], 1
  membar.gl
  ld.weak r1, [y]
thread d0c1t0
  st.weak [y], 1
  membar.gl
  ld.weak r2, [x]
forbidden: 0:r1=0 & 1:r2=0
"""


def cross_model_table() -> None:
    print("Litmus verdicts across models (allowed / forbidden):")
    print(f"{'test':<27}{'ptx':>10}{'tso':>10}{'sc':>10}")
    interesting = [
        "MP+rel_acq.gpu", "MP+rel_acq.cta_cross_cta", "MP+weak",
        "SB+weak", "SB+rel_acq", "SB+fence.sc.gpu",
        "LB+weak", "CoRR", "CoRR+weak", "IRIW+rel_acq", "2+2W+rel",
    ]
    by_name = {t.name: t for t in SUITE}
    for name in interesting:
        test = by_name[name]
        row = f"{name:<27}"
        for model in ("ptx", "tso", "sc"):
            verdict = run_litmus(test, model=model).verdict.value
            row += f"{verdict:>10}"
        print(row)
    print()
    print("Reading the table:")
    print(" * LB+weak and IRIW+rel_acq separate PTX from TSO: PTX permits")
    print("   load buffering and is not multi-copy atomic (§3.4).")
    print(" * CoRR+weak shows racy programs are *defined but weak* in PTX —")
    print("   coherence is only guaranteed between morally strong accesses.")
    print(" * MP+rel_acq.cta_cross_cta shows scope inclusion failing.")


def file_based_test() -> None:
    print()
    print("Textual litmus format (ptxmm run <file> uses the same parser):")
    test = parse_litmus(MEMBAR_TEST)
    result = run_litmus(test)
    print(f"  {test.name}: condition {test.condition!r}")
    print(f"  verdict: {result.verdict.value} (expected {test.expect.value})")
    print(f"  matches documentation: {result.matches_expectation}")


if __name__ == "__main__":
    cross_model_table()
    file_based_test()
